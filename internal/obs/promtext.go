package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the consumer side of the exposition format: a strict
// parser for the Prometheus text format (version 0.0.4) and its
// OpenMetrics 1.0 sibling (counter families declared on the base
// name, histogram-bucket exemplars, the terminal `# EOF`), plus a
// conformance checker over the parsed families. The serve tests and
// the e2e job scrape /metrics through CheckExposition and
// CheckOpenMetrics, so any malformed line, misdeclared type,
// non-monotonic histogram, inconsistent _sum/_count or overlong
// exemplar fails in CI rather than in a production Prometheus.

// PromExemplar is one parsed OpenMetrics exemplar riding on a sample.
type PromExemplar struct {
	Labels map[string]string
	Value  float64
	Ts     float64
	HasTs  bool
}

// PromSample is one parsed sample line.
type PromSample struct {
	Name     string
	Labels   map[string]string
	Value    float64
	Exemplar *PromExemplar // OpenMetrics only; nil when absent
}

// Label returns a label value ("" when absent).
func (s PromSample) Label(name string) string { return s.Labels[name] }

// PromFamily is one parsed metric family: the `# TYPE` declaration
// plus every sample belonging to it.
type PromFamily struct {
	Name    string
	Type    string // counter | gauge | histogram | summary | untyped
	Help    string
	Samples []PromSample
}

// validPromTypes is the closed set of TYPE declarations the format
// allows.
var validPromTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// familyOf maps a sample name to the family it belongs to under the
// declared type: histogram samples attach their _bucket/_sum/_count
// suffixes, summaries _sum/_count, and — in the OpenMetrics form,
// where the TYPE line carries the base name — counters their _total
// samples.
func familyOf(sampleName, declaredFamily, declaredType string) bool {
	if sampleName == declaredFamily {
		return true
	}
	switch declaredType {
	case "histogram":
		return sampleName == declaredFamily+"_bucket" ||
			sampleName == declaredFamily+"_sum" ||
			sampleName == declaredFamily+"_count"
	case "summary":
		return sampleName == declaredFamily+"_sum" ||
			sampleName == declaredFamily+"_count"
	case "counter":
		return sampleName == declaredFamily+"_total"
	}
	return false
}

// parseSampleLine parses one non-comment exposition line.
func parseSampleLine(line string) (PromSample, error) {
	s := PromSample{}
	rest := line
	// Metric name runs to '{' or whitespace.
	end := strings.IndexAny(rest, "{ \t")
	if end < 0 {
		return s, fmt.Errorf("no value on line %q", line)
	}
	s.Name = rest[:end]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[end:]

	if rest[0] == '{' {
		labels, remainder, err := parseLabelSet(rest, line)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = remainder
	}

	// An OpenMetrics exemplar follows the value (and optional
	// timestamp) after a '#'. Label values were consumed above, so an
	// unquoted '#' here can only be the exemplar separator.
	if hash := strings.IndexByte(rest, '#'); hash >= 0 {
		ex, err := parseExemplar(rest[hash+1:], line)
		if err != nil {
			return s, err
		}
		s.Exemplar = ex
		rest = rest[:hash]
	}

	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("want 'value [timestamp]' after name, got %q", rest)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q in %q", fields[0], line)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q in %q", fields[1], line)
		}
	}
	return s, nil
}

// parseLabelSet consumes a `{name="value",...}` labelset (rest must
// start at the '{'), returning the labels and the remainder after the
// closing brace.
func parseLabelSet(rest, line string) (map[string]string, string, error) {
	rest = rest[1:]
	labels := map[string]string{}
	for {
		rest = strings.TrimLeft(rest, " \t")
		if rest == "" {
			return nil, "", fmt.Errorf("unterminated label set in %q", line)
		}
		if rest[0] == '}' {
			return labels, rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '=' in %q", line)
		}
		name := strings.TrimSpace(rest[:eq])
		if !validLabelName(name) {
			return nil, "", fmt.Errorf("invalid label name %q in %q", name, line)
		}
		rest = strings.TrimLeft(rest[eq+1:], " \t")
		if rest == "" || rest[0] != '"' {
			return nil, "", fmt.Errorf("unquoted label value for %q in %q", name, line)
		}
		val, remainder, err := parseQuoted(rest)
		if err != nil {
			return nil, "", fmt.Errorf("%w in %q", err, line)
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("duplicate label %q in %q", name, line)
		}
		labels[name] = val
		rest = strings.TrimLeft(remainder, " \t")
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
		} else if !strings.HasPrefix(rest, "}") {
			return nil, "", fmt.Errorf("expected ',' or '}' after label %q in %q", name, line)
		}
	}
}

// parseExemplar parses the exemplar clause after the '#' separator:
// `{labels} value [timestamp]`, the timestamp in unix seconds.
func parseExemplar(s, line string) (*PromExemplar, error) {
	s = strings.TrimLeft(s, " \t")
	if s == "" || s[0] != '{' {
		return nil, fmt.Errorf("exemplar without labelset in %q", line)
	}
	labels, rest, err := parseLabelSet(s, line)
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return nil, fmt.Errorf("want 'value [timestamp]' in exemplar, got %q in %q", rest, line)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return nil, fmt.Errorf("bad exemplar value %q in %q", fields[0], line)
	}
	ex := &PromExemplar{Labels: labels, Value: v}
	if len(fields) == 2 {
		ts, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || math.IsNaN(ts) || math.IsInf(ts, 0) {
			return nil, fmt.Errorf("bad exemplar timestamp %q in %q", fields[1], line)
		}
		ex.Ts, ex.HasTs = ts, true
	}
	return ex, nil
}

// parseQuoted consumes a double-quoted label value with \\ \" \n
// escapes, returning the decoded value and the remainder after the
// closing quote.
func parseQuoted(s string) (string, string, error) {
	if s == "" || s[0] != '"' {
		return "", "", fmt.Errorf("missing opening quote")
	}
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("invalid escape \\%c", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		case '\n':
			return "", "", fmt.Errorf("newline inside label value")
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// ParseExposition parses a complete text exposition into families,
// enforcing the line grammar and the family structure: a TYPE line
// (at most one per family) must precede that family's samples, all of
// one family's samples are contiguous, and no family recurs. Both the
// 0.0.4 and the OpenMetrics form parse; an `# EOF` terminator is
// accepted (and must then be last).
func ParseExposition(data []byte) ([]PromFamily, error) {
	families, _, err := parseExposition(data)
	return families, err
}

func parseExposition(data []byte) ([]PromFamily, bool, error) {
	var (
		families []PromFamily
		byName   = map[string]*PromFamily{}
		current  *PromFamily
		closed   = map[string]bool{} // families whose sample block has ended
		eof      bool
	)
	family := func(name string) *PromFamily {
		if f, ok := byName[name]; ok {
			return f
		}
		families = append(families, PromFamily{Name: name, Type: "untyped"})
		f := &families[len(families)-1]
		byName[name] = f
		return f
	}
	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		if strings.TrimSpace(line) == "" {
			continue
		}
		lineNo := ln + 1
		if eof {
			return nil, false, fmt.Errorf("line %d: content after # EOF", lineNo)
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 2 {
				continue // bare comment
			}
			switch fields[1] {
			case "EOF":
				if len(fields) != 2 || line != "# EOF" {
					return nil, false, fmt.Errorf("line %d: malformed EOF line %q", lineNo, line)
				}
				eof = true
				continue
			case "TYPE":
				if len(fields) != 4 {
					return nil, false, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				name, typ := fields[2], strings.TrimSpace(fields[3])
				if !validMetricName(name) {
					return nil, false, fmt.Errorf("line %d: invalid family name %q", lineNo, name)
				}
				if !validPromTypes[typ] {
					return nil, false, fmt.Errorf("line %d: invalid TYPE %q for %q", lineNo, typ, name)
				}
				if f, seen := byName[name]; seen && (len(f.Samples) > 0 || f.Type != "untyped") {
					return nil, false, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				if closed[name] {
					return nil, false, fmt.Errorf("line %d: family %q reopened after other samples", lineNo, name)
				}
				if current != nil && current.Name != name {
					closed[current.Name] = true
				}
				f := family(name)
				f.Type = typ
				current = f
			case "HELP":
				if len(fields) < 3 {
					return nil, false, fmt.Errorf("line %d: malformed HELP line %q", lineNo, line)
				}
				name := fields[2]
				if !validMetricName(name) {
					return nil, false, fmt.Errorf("line %d: invalid family name %q", lineNo, name)
				}
				if f, seen := byName[name]; seen && f.Help != "" {
					return nil, false, fmt.Errorf("line %d: duplicate HELP for %q", lineNo, name)
				}
				f := family(name)
				if len(fields) == 4 {
					f.Help = fields[3]
				}
			default:
				// Plain comment: ignored.
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, false, fmt.Errorf("line %d: %w", lineNo, err)
		}
		// Attach to the family owning this sample name.
		owner := current
		if owner == nil || !familyOf(s.Name, owner.Name, owner.Type) {
			if owner != nil {
				closed[owner.Name] = true
			}
			if !validMetricName(s.Name) {
				return nil, false, fmt.Errorf("line %d: invalid metric name %q", lineNo, s.Name)
			}
			if closed[s.Name] {
				return nil, false, fmt.Errorf("line %d: family %q samples are not contiguous", lineNo, s.Name)
			}
			owner = family(s.Name)
			current = owner
		}
		owner.Samples = append(owner.Samples, s)
	}
	return families, eof, nil
}

// CheckExposition parses data and verifies the semantic invariants a
// Prometheus scraper relies on: counters are finite and non-negative,
// histograms have monotone cumulative buckets ending in le="+Inf",
// and _count equals the +Inf bucket for every label set. Exemplars,
// when present, must ride on histogram buckets or counters only and
// satisfy the OpenMetrics bounds (labelset within 128 characters, the
// value inside its bucket).
func CheckExposition(data []byte) error {
	families, err := ParseExposition(data)
	return checkFamilies(families, err)
}

// CheckOpenMetrics is CheckExposition under the stricter OpenMetrics
// contract: the exposition must terminate with `# EOF`.
func CheckOpenMetrics(data []byte) error {
	families, eof, err := parseExposition(data)
	if err == nil && !eof {
		return fmt.Errorf("OpenMetrics exposition does not end with # EOF")
	}
	return checkFamilies(families, err)
}

func checkFamilies(families []PromFamily, err error) error {
	if err != nil {
		return err
	}
	for i := range families {
		f := &families[i]
		switch f.Type {
		case "counter":
			for _, s := range f.Samples {
				// The 0.0.4 form declares the family on the full _total
				// name, the OpenMetrics form on the base name.
				if s.Name != f.Name && s.Name != f.Name+"_total" {
					return fmt.Errorf("family %s: stray sample %s", f.Name, s.Name)
				}
				if math.IsNaN(s.Value) || s.Value < 0 {
					return fmt.Errorf("family %s: counter value %v", f.Name, s.Value)
				}
				if err := checkExemplar(f.Name, s.Exemplar, math.Inf(1)); err != nil {
					return err
				}
			}
		case "histogram":
			if err := checkHistogram(f); err != nil {
				return err
			}
		default:
			for _, s := range f.Samples {
				if s.Exemplar != nil {
					return fmt.Errorf("family %s: exemplar on %s sample %s (only counters and histogram buckets may carry exemplars)",
						f.Name, f.Type, s.Name)
				}
			}
		}
	}
	return nil
}

// checkExemplar validates one exemplar against the OpenMetrics rules:
// the combined label names and values stay within 128 UTF-8
// characters, names are valid, and the value lies within the bucket
// it annotates (maxValue is +Inf for counters).
func checkExemplar(family string, ex *PromExemplar, maxValue float64) error {
	if ex == nil {
		return nil
	}
	runes := 0
	for k, v := range ex.Labels {
		if !validLabelName(k) {
			return fmt.Errorf("family %s: invalid exemplar label name %q", family, k)
		}
		runes += len([]rune(k)) + len([]rune(v))
	}
	if runes > 128 {
		return fmt.Errorf("family %s: exemplar labelset is %d characters, limit 128", family, runes)
	}
	if math.IsNaN(ex.Value) || ex.Value > maxValue {
		return fmt.Errorf("family %s: exemplar value %v outside its bucket (le=%v)", family, ex.Value, maxValue)
	}
	return nil
}

// FindFamily returns the family with the given name, or nil.
func FindFamily(families []PromFamily, name string) *PromFamily {
	for i := range families {
		if families[i].Name == name {
			return &families[i]
		}
	}
	return nil
}

// labelKey canonicalizes a label set minus the given excluded label,
// for grouping histogram series.
func labelKey(labels map[string]string, exclude string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != exclude {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q;", k, labels[k])
	}
	return b.String()
}

func checkHistogram(f *PromFamily) error {
	type series struct {
		buckets  []PromSample // _bucket samples in exposition order
		sum      *float64
		count    *float64
		infCount float64
		hasInf   bool
	}
	group := map[string]*series{}
	at := func(labels map[string]string) *series {
		key := labelKey(labels, "le")
		g, ok := group[key]
		if !ok {
			g = &series{}
			group[key] = g
		}
		return g
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("family %s: _bucket without le label", f.Name)
			}
			bound, err := parsePromValue(le)
			if err != nil {
				return fmt.Errorf("family %s: unparsable le=%q", f.Name, le)
			}
			if err := checkExemplar(f.Name, s.Exemplar, bound); err != nil {
				return err
			}
			g := at(s.Labels)
			g.buckets = append(g.buckets, s)
			if math.IsInf(bound, 1) {
				g.hasInf, g.infCount = true, s.Value
			}
		case f.Name + "_sum":
			if s.Exemplar != nil {
				return fmt.Errorf("family %s: exemplar on _sum sample", f.Name)
			}
			v := s.Value
			at(s.Labels).sum = &v
		case f.Name + "_count":
			if s.Exemplar != nil {
				return fmt.Errorf("family %s: exemplar on _count sample", f.Name)
			}
			v := s.Value
			at(s.Labels).count = &v
		default:
			return fmt.Errorf("family %s: stray sample %s", f.Name, s.Name)
		}
	}
	for key, g := range group {
		if !g.hasInf {
			return fmt.Errorf("family %s{%s}: no le=\"+Inf\" bucket", f.Name, key)
		}
		if g.sum == nil || g.count == nil {
			return fmt.Errorf("family %s{%s}: missing _sum or _count", f.Name, key)
		}
		//lint:ignore rplint/floateq histogram invariant: _count and the +Inf bucket are parsed from the same integral exposition text, so exact equality is the check
		if *g.count != g.infCount {
			return fmt.Errorf("family %s{%s}: _count %v != +Inf bucket %v",
				f.Name, key, *g.count, g.infCount)
		}
		prevBound := math.Inf(-1)
		prevCum := -1.0
		for _, b := range g.buckets {
			bound, _ := parsePromValue(b.Labels["le"])
			if bound <= prevBound {
				return fmt.Errorf("family %s{%s}: le bounds not increasing at %v", f.Name, key, bound)
			}
			if b.Value < prevCum {
				return fmt.Errorf("family %s{%s}: cumulative count decreases at le=%v (%v < %v)",
					f.Name, key, bound, b.Value, prevCum)
			}
			prevBound, prevCum = bound, b.Value
		}
	}
	return nil
}
