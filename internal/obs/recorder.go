package obs

import (
	"sync"
	"time"
)

// Record is one completed request as retained by the flight recorder:
// enough to reconstruct what the service did for a given X-Request-ID
// after the fact — identity, shape of the input, per-stage trace,
// degradation annotations, fault hits, and the outcome.
type Record struct {
	ID            ID
	Time          time.Time // admission time
	Endpoint      string
	Tenant        string // cardinality-capped tenant label
	Status        int    // HTTP status written
	Duration      time.Duration
	SeriesLen     int
	BatchSize     int
	OptionsDigest uint64
	Cached        bool
	ErrorCode     string
	DegradedCount int
	ItemErrors    int
	FaultPoints   []string
	Degraded      any // serving layer's degradation annotations
	Trace         any // serving layer's per-stage trace summary
}

// Interesting reports whether the record should be pinned: any error
// status, any degradation, any item failure, or any fired fault.
func (r *Record) Interesting() bool {
	return r.Status >= 400 || r.DegradedCount > 0 || r.ItemErrors > 0 ||
		len(r.FaultPoints) > 0
}

// Outcome classifies the record for listings: "error", "degraded" or
// "ok".
func (r *Record) Outcome() string {
	switch {
	case r.Status >= 400:
		return "error"
	case r.DegradedCount > 0 || r.ItemErrors > 0:
		return "degraded"
	default:
		return "ok"
	}
}

// Recorder is an always-on post-mortem flight recorder: a bounded ring
// of the most recent request records plus a second ring where
// error/degraded requests are pinned, so a burst of healthy traffic
// cannot flush the one request worth debugging. Commit is a single
// mutex-guarded struct copy into a preallocated slot — no allocation,
// no channel, cheap enough for the cached-result path.
type Recorder struct {
	mu     sync.Mutex
	recent []Record // ring of all records
	pinned []Record // ring of Interesting() records
	rHead  int      // next recent slot
	rLen   int
	pHead  int // next pinned slot
	pLen   int
}

// NewRecorder builds a recorder retaining the last size records (and
// up to size pinned error/degraded records on top). size <= 0 selects
// the default of 256.
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = 256
	}
	return &Recorder{
		recent: make([]Record, size),
		pinned: make([]Record, size),
	}
}

// Record retains rec, overwriting the oldest entry when the ring is
// full. Interesting records are additionally copied into the pinned
// ring. Nil-safe and allocation-free.
func (r *Recorder) Record(rec *Record) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.recent[r.rHead] = *rec
	r.rHead = (r.rHead + 1) % len(r.recent)
	if r.rLen < len(r.recent) {
		r.rLen++
	}
	if rec.Interesting() {
		r.pinned[r.pHead] = *rec
		r.pHead = (r.pHead + 1) % len(r.pinned)
		if r.pLen < len(r.pinned) {
			r.pLen++
		}
	}
	r.mu.Unlock()
}

// Lookup returns the record with the given ID. Both rings are scanned
// newest-first; the pinned ring first, since an error record may have
// already been flushed from the recent ring.
func (r *Recorder) Lookup(id ID) (Record, bool) {
	if r == nil {
		return Record{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if rec, ok := scanRing(r.pinned, r.pHead, r.pLen, id); ok {
		return rec, true
	}
	return scanRing(r.recent, r.rHead, r.rLen, id)
}

func scanRing(ring []Record, head, n int, id ID) (Record, bool) {
	for i := 1; i <= n; i++ {
		idx := (head - i + len(ring)) % len(ring)
		if ring[idx].ID == id {
			return ring[idx], true
		}
	}
	return Record{}, false
}

// Snapshot returns up to max records newest-first, the union of both
// rings with pinned-ring duplicates removed. max <= 0 means all.
func (r *Recorder) Snapshot(max int) []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[ID]bool, r.rLen+r.pLen)
	out := make([]Record, 0, r.rLen+r.pLen)
	collect := func(ring []Record, head, n int) {
		for i := 1; i <= n; i++ {
			idx := (head - i + len(ring)) % len(ring)
			if seen[ring[idx].ID] {
				continue
			}
			seen[ring[idx].ID] = true
			out = append(out, ring[idx])
		}
	}
	// Recent first so listings lead with the newest traffic; the pinned
	// ring then contributes only records already flushed from recent.
	collect(r.recent, r.rHead, r.rLen)
	collect(r.pinned, r.pHead, r.pLen)
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// Len reports how many distinct records the recorder currently holds.
func (r *Recorder) Len() int {
	return len(r.Snapshot(0))
}
