package obs

import (
	"testing"
	"time"
)

func TestRecorderLookup(t *testing.T) {
	r := NewRecorder(8)
	g := NewIDGen()
	id := g.Next()
	r.Record(&Record{ID: id, Endpoint: "detect", Status: 200, SeriesLen: 512})
	got, ok := r.Lookup(id)
	if !ok || got.SeriesLen != 512 || got.Endpoint != "detect" {
		t.Fatalf("Lookup = %+v, %v", got, ok)
	}
	if _, ok := r.Lookup(g.Next()); ok {
		t.Fatal("Lookup of unknown ID succeeded")
	}
}

func TestRecorderPinsErrors(t *testing.T) {
	r := NewRecorder(4)
	g := NewIDGen()
	errID := g.Next()
	r.Record(&Record{ID: errID, Status: 500, ErrorCode: "internal_error"})
	// Flush the recent ring with healthy traffic.
	for i := 0; i < 16; i++ {
		r.Record(&Record{ID: g.Next(), Status: 200})
	}
	got, ok := r.Lookup(errID)
	if !ok {
		t.Fatal("error record flushed despite pinning")
	}
	if got.ErrorCode != "internal_error" {
		t.Fatalf("record corrupted: %+v", got)
	}
}

func TestRecorderPinsDegraded(t *testing.T) {
	r := NewRecorder(4)
	g := NewIDGen()
	degID := g.Next()
	r.Record(&Record{ID: degID, Status: 200, DegradedCount: 2})
	for i := 0; i < 16; i++ {
		r.Record(&Record{ID: g.Next(), Status: 200})
	}
	if _, ok := r.Lookup(degID); !ok {
		t.Fatal("degraded record flushed despite pinning")
	}
}

func TestRecorderSnapshotNewestFirstNoDup(t *testing.T) {
	r := NewRecorder(4)
	g := NewIDGen()
	var ids []ID
	for i := 0; i < 6; i++ {
		id := g.Next()
		ids = append(ids, id)
		st := 200
		if i == 1 {
			st = 503 // pinned, survives the ring
		}
		r.Record(&Record{ID: id, Status: st, Time: time.Unix(int64(i), 0)})
	}
	snap := r.Snapshot(0)
	seen := map[ID]int{}
	for _, rec := range snap {
		seen[rec.ID]++
	}
	for id, n := range seen {
		if n > 1 {
			t.Fatalf("ID %s appears %d times in snapshot", id, n)
		}
	}
	// Newest 4 (recent ring) plus the pinned error record.
	if len(snap) != 5 {
		t.Fatalf("snapshot size = %d, want 5", len(snap))
	}
	if snap[0].ID != ids[5] {
		t.Fatal("snapshot not newest-first")
	}
	if _, ok := seen[ids[1]]; !ok {
		t.Fatal("pinned record missing from snapshot")
	}
	if got := r.Snapshot(2); len(got) != 2 || got[0].ID != ids[5] {
		t.Fatalf("Snapshot(2) = %d records", len(got))
	}
	if r.Len() != 5 {
		t.Fatalf("Len = %d, want 5", r.Len())
	}
}

func TestRecorderOutcome(t *testing.T) {
	cases := []struct {
		rec  Record
		want string
	}{
		{Record{Status: 200}, "ok"},
		{Record{Status: 404}, "error"},
		{Record{Status: 200, DegradedCount: 1}, "degraded"},
		{Record{Status: 200, ItemErrors: 1}, "degraded"},
	}
	for _, tc := range cases {
		if got := tc.rec.Outcome(); got != tc.want {
			t.Errorf("Outcome(%+v) = %q, want %q", tc.rec, got, tc.want)
		}
	}
	faulty := Record{Status: 200, FaultPoints: []string{"serve/worker"}}
	if !faulty.Interesting() {
		t.Error("fault-hit record not Interesting")
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(&Record{})
	if _, ok := r.Lookup(ID{}); ok {
		t.Fatal("nil recorder lookup succeeded")
	}
	if r.Snapshot(0) != nil {
		t.Fatal("nil recorder snapshot non-nil")
	}
}

// TestRecorderCommitAllocFree pins the acceptance criterion: minting
// an ID, building a record and committing it to the recorder performs
// zero heap allocations — the bookkeeping the cached-result path pays.
func TestRecorderCommitAllocFree(t *testing.T) {
	r := NewRecorder(64)
	g := NewIDGen()
	start := time.Now()
	allocs := testing.AllocsPerRun(1000, func() {
		rec := Record{
			ID:            g.Next(),
			Time:          start,
			Endpoint:      "detect",
			Status:        200,
			Duration:      time.Millisecond,
			SeriesLen:     1024,
			OptionsDigest: 0xdeadbeef,
			Cached:        true,
		}
		r.Record(&rec)
	})
	if allocs != 0 {
		t.Fatalf("ID+Record commit allocates %v per run, want 0", allocs)
	}
}
