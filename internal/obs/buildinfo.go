package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"robustperiod/internal/registry"
)

// BuildInfo summarizes how the running binary was built, sourced from
// the module metadata the Go linker embeds. It backs both the
// -version flag of the binaries and the rp_build_info metric.
type BuildInfo struct {
	GoVersion string // toolchain, e.g. go1.22.4
	Module    string // main module path
	Version   string // main module version ((devel) for local builds)
	Revision  string // vcs.revision, "" when built outside a checkout
	Dirty     bool   // vcs.modified
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// GetBuildInfo reads the embedded build metadata once and caches it.
func GetBuildInfo() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.GoVersion != "" {
			buildInfo.GoVersion = bi.GoVersion
		}
		buildInfo.Module = bi.Main.Path
		buildInfo.Version = bi.Main.Version
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				buildInfo.Revision = kv.Value
			case "vcs.modified":
				buildInfo.Dirty = kv.Value == "true"
			}
		}
	})
	return buildInfo
}

// String renders the one-line form printed by -version.
func (b BuildInfo) String() string {
	rev := b.Revision
	if rev == "" {
		rev = "unknown"
	} else if len(rev) > 12 {
		rev = rev[:12]
	}
	dirty := ""
	if b.Dirty {
		dirty = " (dirty)"
	}
	version := b.Version
	if version == "" {
		version = "(devel)"
	}
	return fmt.Sprintf("%s %s revision %s%s built with %s",
		b.Module, version, rev, dirty, b.GoVersion)
}

// WriteProm emits the conventional build-info gauge: constant value 1
// with the build facts as labels.
func (b BuildInfo) WriteProm(p *PromWriter) {
	dirty := "false"
	if b.Dirty {
		dirty = "true"
	}
	p.Family(registry.MetricBuildInfo, "Build metadata of the running binary (value is always 1).", "gauge")
	p.Sample(registry.MetricBuildInfo, []Label{
		{"go_version", b.GoVersion},
		{"module", b.Module},
		{"version", b.Version},
		{"revision", b.Revision},
		{"dirty", dirty},
	}, 1)
}
