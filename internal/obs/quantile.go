package obs

import (
	"sort"
	"sync"
)

// The P² (piecewise-parabolic) algorithm of Jain & Chlamtac (CACM
// 1985) estimates a single quantile of a stream in O(1) space: five
// markers track the minimum, the target quantile, two flanking
// quantiles and the maximum, and each observation nudges the middle
// markers along a parabolic interpolation of their neighbours. The
// estimate converges to the true quantile for stationary inputs and
// tracks slow drift — exactly the behavior wanted from a service
// latency quantile that must never hold the full sample.

// p2 estimates one quantile p ∈ (0, 1).
type p2 struct {
	p     float64
	count int
	q     [5]float64 // marker heights
	n     [5]float64 // marker positions (1-based)
	np    [5]float64 // desired positions
	dn    [5]float64 // desired-position increments
}

func newP2(p float64) p2 {
	return p2{
		p:  p,
		dn: [5]float64{0, p / 2, p, (1 + p) / 2, 1},
	}
}

func (e *p2) observe(x float64) {
	if e.count < 5 {
		e.q[e.count] = x
		e.count++
		if e.count == 5 {
			sort.Float64s(e.q[:])
			for i := 0; i < 5; i++ {
				e.n[i] = float64(i + 1)
			}
			e.np = [5]float64{1, 1 + 2*e.p, 1 + 4*e.p, 3 + 2*e.p, 5}
		}
		return
	}
	e.count++

	// Locate the cell holding x, stretching the extremes when x lands
	// outside the current marker span.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := 0; i < 5; i++ {
		e.np[i] += e.dn[i]
	}

	// Nudge the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.np[i] - e.n[i]
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			qp := e.parabolic(i, s)
			if e.q[i-1] < qp && qp < e.q[i+1] {
				e.q[i] = qp
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.n[i] += s
		}
	}
}

// parabolic is the P² (piecewise-parabolic) height update for marker i
// moving by s ∈ {−1, +1}.
func (e *p2) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.n[i+1]-e.n[i-1])*
		((e.n[i]-e.n[i-1]+s)*(e.q[i+1]-e.q[i])/(e.n[i+1]-e.n[i])+
			(e.n[i+1]-e.n[i]-s)*(e.q[i]-e.q[i-1])/(e.n[i]-e.n[i-1]))
}

// linear is the fallback height update when the parabola would leave
// the bracketing markers' interval.
func (e *p2) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.n[j]-e.n[i])
}

// value returns the current estimate; with fewer than five
// observations it falls back to the exact sample quantile.
func (e *p2) value() float64 {
	if e.count == 0 {
		return 0
	}
	if e.count < 5 {
		var s [5]float64
		copy(s[:], e.q[:e.count])
		sort.Float64s(s[:e.count])
		idx := int(e.p * float64(e.count))
		if idx >= e.count {
			idx = e.count - 1
		}
		return s[idx]
	}
	return e.q[2]
}

// QuantileTargets are the quantiles every Quantiles set tracks, in
// the order Values reports them.
var QuantileTargets = [3]float64{0.5, 0.9, 0.99}

// QuantileLabels are the Prometheus q label values matching
// QuantileTargets.
var QuantileLabels = [3]string{"0.5", "0.9", "0.99"}

// Quantiles tracks the P50/P90/P99 of a stream with three P²
// estimators behind one mutex. Observe is O(1) and allocation-free.
type Quantiles struct {
	mu    sync.Mutex
	est   [3]p2
	count uint64
	sum   float64
}

// NewQuantiles returns an empty tracker for QuantileTargets.
func NewQuantiles() *Quantiles {
	q := &Quantiles{}
	for i, p := range QuantileTargets {
		q.est[i] = newP2(p)
	}
	return q
}

// Observe folds one value into every estimator.
func (q *Quantiles) Observe(v float64) {
	if q == nil {
		return
	}
	q.mu.Lock()
	for i := range q.est {
		q.est[i].observe(v)
	}
	q.count++
	q.sum += v
	q.mu.Unlock()
}

// Values returns the current estimates in QuantileTargets order.
func (q *Quantiles) Values() [3]float64 {
	var out [3]float64
	if q == nil {
		return out
	}
	q.mu.Lock()
	for i := range q.est {
		out[i] = q.est[i].value()
	}
	q.mu.Unlock()
	return out
}

// Count reports how many values have been observed.
func (q *Quantiles) Count() uint64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}
