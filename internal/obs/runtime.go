package obs

import (
	"math"
	"runtime/metrics"

	"robustperiod/internal/registry"
)

// Runtime gauges sourced from the runtime/metrics package. One
// RuntimeSampler owns the sample buffer and the descriptors so a
// scrape does a single metrics.Read and renders straight into the
// exposition, no intermediate maps.

// runtimeSamples are the runtime/metrics keys scraped per exposition.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/heap/allocs:bytes",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// RuntimeSampler reads a fixed set of runtime/metrics samples and
// writes them as rp_go_* Prometheus gauges.
type RuntimeSampler struct {
	samples []metrics.Sample
}

// NewRuntimeSampler prepares the sample buffer.
func NewRuntimeSampler() *RuntimeSampler {
	s := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		s[i].Name = name
	}
	return &RuntimeSampler{samples: s}
}

// histQuantile extracts quantile p from a runtime Float64Histogram by
// walking the cumulative bucket counts and returning the upper bound
// of the bucket where the target rank falls. Infinite bounds fall back
// to the nearest finite neighbour.
func histQuantile(h *metrics.Float64Histogram, p float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			// Bucket i spans Buckets[i]..Buckets[i+1].
			ub := h.Buckets[i+1]
			if math.IsInf(ub, 1) {
				return h.Buckets[i]
			}
			return ub
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// WriteProm samples the runtime and emits the rp_go_* gauge families.
func (rs *RuntimeSampler) WriteProm(p *PromWriter) {
	metrics.Read(rs.samples)
	get := func(name string) metrics.Sample {
		for _, s := range rs.samples {
			if s.Name == name {
				return s
			}
		}
		return metrics.Sample{}
	}
	gauge := func(promName, help, key string) {
		s := get(key)
		var v float64
		switch s.Value.Kind() {
		case metrics.KindUint64:
			v = float64(s.Value.Uint64())
		case metrics.KindFloat64:
			v = s.Value.Float64()
		default:
			return // bad/unavailable on this runtime: omit the family
		}
		//lint:ignore rplint/registry promName is forwarded verbatim from the registry constants below
		p.Family(promName, help, "gauge")
		p.Sample(promName, nil, v)
	}
	gauge(registry.MetricGoGoroutines, "Current number of live goroutines.",
		"/sched/goroutines:goroutines")
	gauge(registry.MetricGoHeapObjectsBytes, "Bytes of memory occupied by live heap objects.",
		"/memory/classes/heap/objects:bytes")
	gauge(registry.MetricGoMemoryTotalBytes, "All memory mapped by the Go runtime.",
		"/memory/classes/total:bytes")
	gauge(registry.MetricGoGCCyclesTotal, "Completed GC cycles since process start.",
		"/gc/cycles/total:gc-cycles")
	gauge(registry.MetricGoHeapAllocsBytes, "Cumulative bytes allocated on the heap.",
		"/gc/heap/allocs:bytes")

	histGauges := func(promName, help, key string) {
		s := get(key)
		if s.Value.Kind() != metrics.KindFloat64Histogram {
			return
		}
		h := s.Value.Float64Histogram()
		//lint:ignore rplint/registry promName is forwarded verbatim from the registry constants below
		p.Family(promName, help, "gauge")
		for i, lbl := range QuantileLabels {
			p.Sample(promName, []Label{{"q", lbl}}, histQuantile(h, QuantileTargets[i]))
		}
	}
	histGauges(registry.MetricGoGCPauseSeconds, "Distribution of stop-the-world GC pause latencies (quantiles).",
		"/gc/pauses:seconds")
	histGauges(registry.MetricGoSchedLatencySeconds, "Distribution of goroutine scheduling latencies (quantiles).",
		"/sched/latencies:seconds")
}
