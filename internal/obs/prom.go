package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the Prometheus text
// exposition format, version 0.0.4.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// OpenMetricsContentType is the Content-Type of the OpenMetrics text
// exposition format, version 1.0.0.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// NegotiateContentType picks the exposition format for an Accept
// header value: OpenMetrics when the client asks for it (the way a
// modern Prometheus scraper does), the classic 0.0.4 text format
// otherwise. Matching is deliberately loose — any mention of the
// openmetrics-text media type opts in; q-value ordering is more
// machinery than two formats warrant.
func NegotiateContentType(accept string) string {
	if strings.Contains(accept, "application/openmetrics-text") {
		return OpenMetricsContentType
	}
	return PromContentType
}

// Label is one name="value" pair of a sample.
type Label struct {
	Name, Value string
}

// Exemplar is one OpenMetrics exemplar: a small labelset (typically
// just trace_id) tying a histogram bucket back to a concrete request,
// the observed value, and an optional unix-seconds timestamp. The
// zero value means "no exemplar".
type Exemplar struct {
	Labels []Label
	Value  float64
	Ts     float64 // unix seconds; 0 omits the timestamp
}

// IsZero reports whether the exemplar is unset.
func (e Exemplar) IsZero() bool { return len(e.Labels) == 0 }

// PromWriter renders metric families in the Prometheus text
// exposition format: `# HELP`/`# TYPE` headers followed by that
// family's samples. The zero mode is the classic 0.0.4 text format;
// with OpenMetrics set (NewOpenMetricsWriter) the writer emits
// OpenMetrics 1.0 instead — counter TYPE lines drop the _total
// suffix, histogram buckets may carry exemplars, and the exposition
// ends with `# EOF`. Errors are sticky; check Err once at the end.
type PromWriter struct {
	w           io.Writer
	err         error
	openMetrics bool
}

// NewPromWriter wraps w in 0.0.4 mode.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// NewOpenMetricsWriter wraps w in OpenMetrics 1.0 mode. The caller
// must finish the exposition with EOF().
func NewOpenMetricsWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, openMetrics: true}
}

// OpenMetrics reports the writer's mode.
func (p *PromWriter) OpenMetrics() bool { return p.openMetrics }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// escapeHelp escapes a HELP docstring (backslash and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value (backslash, quote, newline).
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus expects:
// shortest float representation, with the special values spelled
// +Inf/-Inf/NaN.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// Family emits the `# HELP` and `# TYPE` header of a new family.
// promType is one of counter, gauge, histogram, summary, untyped. In
// OpenMetrics mode a counter family is declared under its base name
// (the `_total` suffix stays on the sample lines, per the spec).
func (p *PromWriter) Family(name, help, promType string) {
	if p.openMetrics && promType == "counter" {
		name = strings.TrimSuffix(name, "_total")
	}
	p.printf("# HELP %s %s\n", name, escapeHelp(help))
	p.printf("# TYPE %s %s\n", name, promType)
}

// EOF terminates an OpenMetrics exposition with the mandatory `# EOF`
// line; a no-op in 0.0.4 mode, so serialization code can call it
// unconditionally.
func (p *PromWriter) EOF() {
	if p.openMetrics {
		p.printf("# EOF\n")
	}
}

// appendLabels renders `{a="b",...}` into b (nothing when empty).
func appendLabels(b *strings.Builder, labels []Label) {
	if len(labels) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// Sample emits one sample line. labels may be nil.
func (p *PromWriter) Sample(name string, labels []Label, v float64) {
	p.sample(name, labels, v, Exemplar{})
}

func (p *PromWriter) sample(name string, labels []Label, v float64, ex Exemplar) {
	if p.err != nil {
		return
	}
	var b strings.Builder
	b.WriteString(name)
	appendLabels(&b, labels)
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	// Exemplars exist only in the OpenMetrics format; in 0.0.4 mode
	// they are silently dropped so one metrics pipeline serves both.
	if p.openMetrics && !ex.IsZero() {
		b.WriteString(" # ")
		appendLabels(&b, ex.Labels)
		b.WriteByte(' ')
		b.WriteString(formatValue(ex.Value))
		if ex.Ts != 0 {
			b.WriteByte(' ')
			b.WriteString(strconv.FormatFloat(ex.Ts, 'f', 3, 64))
		}
	}
	b.WriteByte('\n')
	p.printf("%s", b.String())
}

// Histogram emits a full conformant histogram family: cumulative
// `_bucket` series with `le` labels ending at +Inf, plus `_sum` and
// `_count`. bounds are the finite upper bounds and counts the
// per-bucket (non-cumulative) counts, len(counts) == len(bounds)+1
// with the final element the overflow bucket.
func (p *PromWriter) Histogram(name string, labels []Label, bounds []float64, counts []uint64, sum float64) {
	p.HistogramExemplars(name, labels, bounds, counts, sum, nil)
}

// HistogramExemplars is Histogram with per-bucket exemplars attached
// in OpenMetrics mode: exemplars[i] rides on the bucket bounded by
// bounds[i] (a final extra element rides on the +Inf bucket); zero
// exemplars and a short or nil slice are fine.
func (p *PromWriter) HistogramExemplars(name string, labels []Label, bounds []float64, counts []uint64, sum float64, exemplars []Exemplar) {
	exemplar := func(i int) Exemplar {
		if i < len(exemplars) {
			return exemplars[i]
		}
		return Exemplar{}
	}
	cum := uint64(0)
	ls := make([]Label, len(labels)+1)
	copy(ls, labels)
	for i, b := range bounds {
		cum += counts[i]
		ls[len(labels)] = Label{"le", formatValue(b)}
		p.sample(name+"_bucket", ls, float64(cum), exemplar(i))
	}
	total := cum
	if len(counts) > len(bounds) {
		total += counts[len(bounds)]
	}
	ls[len(labels)] = Label{"le", "+Inf"}
	p.sample(name+"_bucket", ls, float64(total), exemplar(len(bounds)))
	p.Sample(name+"_sum", labels, sum)
	p.Sample(name+"_count", labels, float64(total))
}

// QuantileGauges emits one gauge sample per tracked quantile with the
// conventional q label, e.g. name{...,q="0.99"}.
func (p *PromWriter) QuantileGauges(name string, labels []Label, q *Quantiles) {
	vals := q.Values()
	ls := make([]Label, len(labels)+1)
	copy(ls, labels)
	for i, lbl := range QuantileLabels {
		ls[len(labels)] = Label{"q", lbl}
		p.Sample(name, ls, vals[i])
	}
}
