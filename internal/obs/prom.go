package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the Prometheus text
// exposition format, version 0.0.4.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one name="value" pair of a sample.
type Label struct {
	Name, Value string
}

// PromWriter renders metric families in the Prometheus text
// exposition format (version 0.0.4): `# HELP`/`# TYPE` headers
// followed by that family's samples. Errors are sticky; check Err
// once at the end.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// escapeHelp escapes a HELP docstring (backslash and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value (backslash, quote, newline).
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus expects:
// shortest float representation, with the special values spelled
// +Inf/-Inf/NaN.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// Family emits the `# HELP` and `# TYPE` header of a new family.
// promType is one of counter, gauge, histogram, summary, untyped.
func (p *PromWriter) Family(name, help, promType string) {
	p.printf("# HELP %s %s\n", name, escapeHelp(help))
	p.printf("# TYPE %s %s\n", name, promType)
}

// Sample emits one sample line. labels may be nil.
func (p *PromWriter) Sample(name string, labels []Label, v float64) {
	if p.err != nil {
		return
	}
	if len(labels) == 0 {
		p.printf("%s %s\n", name, formatValue(v))
		return
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	p.printf("%s %s\n", b.String(), formatValue(v))
}

// Histogram emits a full conformant histogram family: cumulative
// `_bucket` series with `le` labels ending at +Inf, plus `_sum` and
// `_count`. bounds are the finite upper bounds and counts the
// per-bucket (non-cumulative) counts, len(counts) == len(bounds)+1
// with the final element the overflow bucket.
func (p *PromWriter) Histogram(name string, labels []Label, bounds []float64, counts []uint64, sum float64) {
	cum := uint64(0)
	ls := make([]Label, len(labels)+1)
	copy(ls, labels)
	for i, b := range bounds {
		cum += counts[i]
		ls[len(labels)] = Label{"le", formatValue(b)}
		p.Sample(name+"_bucket", ls, float64(cum))
	}
	total := cum
	if len(counts) > len(bounds) {
		total += counts[len(bounds)]
	}
	ls[len(labels)] = Label{"le", "+Inf"}
	p.Sample(name+"_bucket", ls, float64(total))
	p.Sample(name+"_sum", labels, sum)
	p.Sample(name+"_count", labels, float64(total))
}

// QuantileGauges emits one gauge sample per tracked quantile with the
// conventional q label, e.g. name{...,q="0.99"}.
func (p *PromWriter) QuantileGauges(name string, labels []Label, q *Quantiles) {
	vals := q.Values()
	ls := make([]Label, len(labels)+1)
	copy(ls, labels)
	for i, lbl := range QuantileLabels {
		ls[len(labels)] = Label{"q", lbl}
		p.Sample(name, ls, vals[i])
	}
}
