package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestPromWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Family("rp_requests_total", "Requests by endpoint.", "counter")
	p.Sample("rp_requests_total", []Label{{"endpoint", "detect"}}, 42)
	p.Sample("rp_requests_total", []Label{{"endpoint", `we"ird\pa` + "\nth"}}, 1)
	p.Family("rp_latency_seconds", "Latency.", "histogram")
	p.Histogram("rp_latency_seconds", []Label{{"endpoint", "detect"}},
		[]float64{0.001, 0.01, 0.1}, []uint64{5, 3, 1, 2}, 0.345)
	p.Family("rp_temp", "Gauge with special values.", "gauge")
	p.Sample("rp_temp", nil, math.Inf(1))
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	data := buf.Bytes()
	if err := CheckExposition(data); err != nil {
		t.Fatalf("writer output fails conformance: %v\n%s", err, data)
	}
	fams, err := ParseExposition(data)
	if err != nil {
		t.Fatal(err)
	}
	rt := FindFamily(fams, "rp_requests_total")
	if rt == nil || rt.Type != "counter" || len(rt.Samples) != 2 {
		t.Fatalf("rp_requests_total: %+v", rt)
	}
	if rt.Samples[1].Label("endpoint") != `we"ird\pa`+"\nth" {
		t.Fatalf("label escaping round-trip broken: %q", rt.Samples[1].Label("endpoint"))
	}
	h := FindFamily(fams, "rp_latency_seconds")
	if h == nil || h.Type != "histogram" {
		t.Fatal("histogram family missing")
	}
	// 3 finite buckets + +Inf + _sum + _count = 6 samples.
	if len(h.Samples) != 6 {
		t.Fatalf("histogram samples = %d, want 6", len(h.Samples))
	}
	last := h.Samples[3]
	if last.Label("le") != "+Inf" || last.Value != 11 {
		t.Fatalf("+Inf bucket wrong: %+v", last)
	}
	g := FindFamily(fams, "rp_temp")
	if g == nil || !math.IsInf(g.Samples[0].Value, 1) {
		t.Fatalf("rp_temp +Inf lost: %+v", g)
	}
}

func TestParseExpositionValid(t *testing.T) {
	src := strings.Join([]string{
		`# HELP rp_x Stuff.`,
		`# TYPE rp_x counter`,
		`rp_x{a="1",b="two"} 3`,
		`rp_x 4 1712000000000`,
		`# TYPE rp_g gauge`,
		`rp_g NaN`,
		``,
	}, "\n")
	fams, err := ParseExposition([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 2 {
		t.Fatalf("families = %d, want 2", len(fams))
	}
	if fams[0].Help != "Stuff." {
		t.Fatalf("help = %q", fams[0].Help)
	}
	if !math.IsNaN(fams[1].Samples[0].Value) {
		t.Fatal("NaN not parsed")
	}
}

func TestConformanceRejections(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"bad metric name", "1bad_name 3\n"},
		{"bad label name", `rp_x{1bad="v"} 3` + "\n"},
		{"reserved label name", `rp_x{__internal="v"} 3` + "\n"},
		{"unquoted label value", `rp_x{a=v} 3` + "\n"},
		{"unterminated label value", `rp_x{a="v} 3` + "\n"},
		{"bad escape", `rp_x{a="\t"} 3` + "\n"},
		{"duplicate label", `rp_x{a="1",a="2"} 3` + "\n"},
		{"missing value", "rp_x{}\n"},
		{"bad value", "rp_x potato\n"},
		{"bad TYPE", "# TYPE rp_x matrix\nrp_x 1\n"},
		{"duplicate TYPE", "# TYPE rp_x counter\nrp_x 1\n# TYPE rp_x gauge\nrp_x 2\n"},
		{"non-contiguous family", "# TYPE rp_x counter\nrp_x 1\n# TYPE rp_y gauge\nrp_y 2\nrp_x 3\n"},
		{"negative counter", "# TYPE rp_x counter\nrp_x -1\n"},
		{"NaN counter", "# TYPE rp_x counter\nrp_x NaN\n"},
		{"histogram without +Inf", "# TYPE rp_h histogram\n" +
			`rp_h_bucket{le="1"} 2` + "\nrp_h_sum 3\nrp_h_count 2\n"},
		{"histogram count mismatch", "# TYPE rp_h histogram\n" +
			`rp_h_bucket{le="1"} 2` + "\n" + `rp_h_bucket{le="+Inf"} 5` + "\nrp_h_sum 3\nrp_h_count 4\n"},
		{"histogram non-monotonic", "# TYPE rp_h histogram\n" +
			`rp_h_bucket{le="1"} 5` + "\n" + `rp_h_bucket{le="2"} 3` + "\n" +
			`rp_h_bucket{le="+Inf"} 5` + "\nrp_h_sum 3\nrp_h_count 5\n"},
		{"histogram missing sum", "# TYPE rp_h histogram\n" +
			`rp_h_bucket{le="+Inf"} 5` + "\nrp_h_count 5\n"},
		{"histogram bucket without le", "# TYPE rp_h histogram\n" +
			"rp_h_bucket 5\nrp_h_sum 1\nrp_h_count 5\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := CheckExposition([]byte(tc.src)); err == nil {
				t.Fatalf("accepted invalid exposition:\n%s", tc.src)
			}
		})
	}
}

func TestHistogramLabelGrouping(t *testing.T) {
	// Two label sets in one histogram family must be validated
	// independently.
	src := "# TYPE rp_h histogram\n" +
		`rp_h_bucket{endpoint="a",le="1"} 2` + "\n" +
		`rp_h_bucket{endpoint="a",le="+Inf"} 3` + "\n" +
		`rp_h_sum{endpoint="a"} 1.5` + "\n" +
		`rp_h_count{endpoint="a"} 3` + "\n" +
		`rp_h_bucket{endpoint="b",le="1"} 0` + "\n" +
		`rp_h_bucket{endpoint="b",le="+Inf"} 1` + "\n" +
		`rp_h_sum{endpoint="b"} 9` + "\n" +
		`rp_h_count{endpoint="b"} 1` + "\n"
	if err := CheckExposition([]byte(src)); err != nil {
		t.Fatalf("valid multi-series histogram rejected: %v", err)
	}
	bad := strings.Replace(src, `rp_h_count{endpoint="b"} 1`, `rp_h_count{endpoint="b"} 2`, 1)
	if err := CheckExposition([]byte(bad)); err == nil {
		t.Fatal("per-series count mismatch not caught")
	}
}

func TestParseSampleTimestamp(t *testing.T) {
	if _, err := ParseExposition([]byte("rp_x 1 notatime\n")); err == nil {
		t.Fatal("bad timestamp accepted")
	}
}
