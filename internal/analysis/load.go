package analysis

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listPackage is the subset of one `go list -json` record the loader
// consumes.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Standard   bool
}

// ListOutput bundles everything the `go` tool is consulted for, so one
// invocation's answers can be cached to a file (-listcache) and reused
// by later steps without shelling out again. Key fingerprints the
// module layout the answers were computed against (see ListCacheKey);
// a cache whose key no longer matches is regenerated, never reused.
type ListOutput struct {
	Key        string
	GoRoot     string
	ModulePath string
	ModuleDir  string
	Packages   []listPackage
}

// ListCacheKey fingerprints what `go list` answers depend on: the
// go.mod content and the module's package layout (every directory
// holding at least one .go file, with the sorted file names in each).
// Adding, removing, or renaming a package or source file — or editing
// go.mod — changes the key; editing a file's contents does not, since
// that cannot change package metadata.
func ListCacheKey(moduleDir string) (string, error) {
	h := sha256.New()
	if data, err := os.ReadFile(filepath.Join(moduleDir, "go.mod")); err == nil {
		h.Write(data)
	}
	type dirEntry struct {
		dir   string
		files []string
	}
	byDir := make(map[string][]string)
	err := filepath.WalkDir(moduleDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", ".cache", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			rel, rerr := filepath.Rel(moduleDir, filepath.Dir(path))
			if rerr != nil {
				rel = filepath.Dir(path)
			}
			rel = filepath.ToSlash(rel)
			byDir[rel] = append(byDir[rel], d.Name())
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	dirs := make([]dirEntry, 0, len(byDir))
	for dir, files := range byDir {
		sort.Strings(files)
		dirs = append(dirs, dirEntry{dir, files})
	}
	sort.Slice(dirs, func(i, j int) bool { return dirs[i].dir < dirs[j].dir })
	for _, de := range dirs {
		fmt.Fprintf(h, "%s=%s;", de.dir, strings.Join(de.files, ","))
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Package is one loaded, parsed, and type-checked module package —
// the unit every analyzer runs over.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Filenames  []string // absolute, parallel to Files
	Types      *types.Package
	Info       *types.Info
}

// Loader parses and type-checks packages with nothing but the
// standard library: module packages resolve by directory mapping
// under the module root, everything else from GOROOT/src via go/build
// (which also resolves the standard library's vendored imports). Cgo
// is disabled so the pure-Go variants of the standard library are
// selected; `import "C"` never appears in a stdlib-only module.
type Loader struct {
	Fset       *token.FileSet
	GoRoot     string
	ModulePath string
	ModuleDir  string

	// Overrides maps import paths to source directories, consulted
	// before ordinary resolution; the fixture tests use it to supply a
	// fake third-party dependency that no real resolver could find.
	Overrides map[string]string

	ctxt     build.Context
	packages map[string]*types.Package // keyed by package dir; nil marks in-progress (cycle)
	DepErrs  []error                   // soft type errors seen in dependencies
}

// NewLoader prepares a Loader rooted at moduleDir.
func NewLoader(moduleDir, modulePath, goroot string) *Loader {
	ctxt := build.Default
	ctxt.CgoEnabled = false
	ctxt.Dir = moduleDir
	return &Loader{
		Fset:       token.NewFileSet(),
		GoRoot:     goroot,
		ModulePath: modulePath,
		ModuleDir:  moduleDir,
		ctxt:       ctxt,
		packages:   make(map[string]*types.Package),
	}
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePathOf reads the module path from moduleDir/go.mod.
func modulePathOf(moduleDir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s/go.mod", moduleDir)
}

// List resolves patterns (e.g. "./...") to package metadata via
// `go list -json`, or from cacheFile when it exists and its layout
// key still matches the module (a stale cache — go.mod edited, a
// package added or removed — is regenerated in place, not reused).
// When cacheFile is non-empty and absent or stale, the fresh output
// is written there for the next step to reuse.
func List(moduleDir string, patterns []string, cacheFile string) (*ListOutput, error) {
	var cacheKey string
	if cacheFile != "" {
		var err error
		cacheKey, err = ListCacheKey(moduleDir)
		if err != nil {
			return nil, err
		}
		if data, err := os.ReadFile(cacheFile); err == nil {
			out := new(ListOutput)
			if err := json.Unmarshal(data, out); err != nil {
				return nil, fmt.Errorf("analysis: corrupt list cache %s: %w", cacheFile, err)
			}
			if out.Key == cacheKey {
				return out, nil
			}
			// Stale: fall through to a fresh `go list` run.
		}
	}
	modulePath, err := modulePathOf(moduleDir)
	if err != nil {
		return nil, err
	}
	goroot, err := goEnv(moduleDir, "GOROOT")
	if err != nil {
		return nil, err
	}
	args := append([]string{"list", "-json=Dir,ImportPath,Name,GoFiles,Standard", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	out := &ListOutput{Key: cacheKey, GoRoot: goroot, ModulePath: modulePath, ModuleDir: moduleDir}
	dec := json.NewDecoder(bytes.NewReader(stdout))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		out.Packages = append(out.Packages, lp)
	}
	if cacheFile != "" {
		if data, err := json.MarshalIndent(out, "", "\t"); err == nil {
			if err := os.MkdirAll(filepath.Dir(cacheFile), 0o755); err == nil {
				_ = os.WriteFile(cacheFile, data, 0o644)
			}
		}
	}
	return out, nil
}

func goEnv(dir, key string) (string, error) {
	cmd := exec.Command("go", "env", key)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("analysis: go env %s: %w", key, err)
	}
	return strings.TrimSpace(string(out)), nil
}

// Load lists patterns and type-checks every non-test module package
// they resolve to, in a shared Loader whose result is returned along
// with the Loader (for config construction and further queries).
func Load(moduleDir string, patterns []string, cacheFile string) (*Loader, []*Package, error) {
	lo, err := List(moduleDir, patterns, cacheFile)
	if err != nil {
		return nil, nil, err
	}
	l := NewLoader(lo.ModuleDir, lo.ModulePath, lo.GoRoot)
	var pkgs []*Package
	for _, lp := range lo.Packages {
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := l.checkDir(lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) == 0 {
		return nil, nil, fmt.Errorf("analysis: no packages matched %v", patterns)
	}
	return l, pkgs, nil
}

// LoadDir type-checks one directory's non-test files as importPath —
// the entry point for fixture tests, whose files live under testdata
// and are invisible to `go list`.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	return l.checkDir(importPath, dir, bp.GoFiles)
}

// checkDir parses and fully type-checks the named files of one target
// package, recording complete type information. The result is also
// registered in the import cache so later targets that import it reuse
// the checked package.
func (l *Loader) checkDir(importPath, dir string, goFiles []string) (*Package, error) {
	files, names, err := l.parseFiles(dir, goFiles)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	var firstErr error
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, firstErr)
	}
	// Register for reuse by later importers — but never overwrite: if
	// this package was already checked as a dependency, other packages
	// hold references into that version, and mixing the two breaks
	// type identity.
	if _, ok := l.packages[dir]; !ok {
		l.packages[dir] = tpkg
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Files:      files,
		Filenames:  names,
		Types:      tpkg,
		Info:       info,
	}, nil
}

func (l *Loader) parseFiles(dir string, goFiles []string) ([]*ast.File, []string, error) {
	var files []*ast.File
	var names []string
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
		names = append(names, path)
	}
	return files, names, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleDir, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal import
// paths map straight onto directories under the module root; anything
// else must be standard library, resolved from GOROOT/src relative to
// the importing package (so the stdlib's vendored golang.org/x/*
// dependencies resolve the same way the go tool resolves them).
// Dependencies are type-checked from source, recursively, exactly
// once; type errors inside dependencies are tolerated (collected in
// DepErrs) so one exotic corner of the stdlib cannot take the whole
// lint run down.
func (l *Loader) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	var dir string
	var goFiles []string
	if odir, ok := l.Overrides[path]; ok {
		dir = odir
		bp, err := l.ctxt.ImportDir(dir, 0)
		if err != nil {
			return nil, fmt.Errorf("analysis: resolving overridden import %q: %w", path, err)
		}
		goFiles = bp.GoFiles
	} else if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		dir = filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
		bp, err := l.ctxt.ImportDir(dir, 0)
		if err != nil {
			return nil, fmt.Errorf("analysis: resolving module import %q: %w", path, err)
		}
		goFiles = bp.GoFiles
	} else {
		bp, err := l.ctxt.Import(path, srcDir, 0)
		if err != nil {
			return nil, fmt.Errorf("analysis: resolving import %q: %w", path, err)
		}
		dir = bp.Dir
		goFiles = bp.GoFiles
		path = bp.ImportPath
	}
	if pkg, ok := l.packages[dir]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("analysis: import cycle through %q", path)
		}
		return pkg, nil
	}
	l.packages[dir] = nil // in progress: a re-entrant import is a cycle
	files, _, err := l.parseFiles(dir, goFiles)
	if err != nil {
		delete(l.packages, dir)
		return nil, err
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error: func(err error) {
			l.DepErrs = append(l.DepErrs, err)
		},
	}
	tpkg, err := conf.Check(path, l.Fset, files, nil)
	if tpkg == nil {
		delete(l.packages, dir)
		return nil, fmt.Errorf("analysis: type-checking dependency %q: %w", path, err)
	}
	l.packages[dir] = tpkg
	return tpkg, nil
}
