package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"sync"
	"testing"
)

// parseBody parses src as the body of a single function declaration
// and returns it with its fileset.
func parseBody(t *testing.T, body string) (*ast.BlockStmt, *token.FileSet) {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return file.Decls[0].(*ast.FuncDecl).Body, fset
}

// findCall locates the statement containing a call to name and returns
// its block and index in the CFG.
func findCall(t *testing.T, g *CFG, body *ast.BlockStmt, name string) (*Block, int) {
	t.Helper()
	var pos token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
				pos = call.Pos()
				return false
			}
		}
		return true
	})
	if !pos.IsValid() {
		t.Fatalf("no call to %s in fixture body", name)
	}
	blk, idx := g.FindStmt(pos)
	if blk == nil {
		t.Fatalf("FindStmt found no block for the call to %s", name)
	}
	return blk, idx
}

// callsInStmt reports whether s (scanned shallowly, so compound-
// statement bodies don't leak through their header block) contains a
// call to name on this goroutine's own path — function literals and
// go statements are skipped, mirroring how the analyzers scan.
func callsInStmt(s ast.Stmt, name string) bool {
	found := false
	for _, node := range ShallowNodes(s) {
		ast.Inspect(node, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
					found = true
					return false
				}
			}
			return true
		})
	}
	return found
}

func TestEveryPath(t *testing.T) {
	cases := []struct {
		name string
		body string
		want bool // every path from acquire() reaches release()
	}{
		{"straight line", `
			acquire()
			work()
			release()`, true},
		{"early return misses release", `
			acquire()
			if cond() {
				return
			}
			release()`, false},
		{"release on both branches", `
			acquire()
			if cond() {
				release()
				return
			}
			release()`, true},
		{"release only in one switch case", `
			acquire()
			switch pick() {
			case 1:
				release()
			case 2:
				work()
			}`, false},
		{"release in every switch case and default", `
			acquire()
			switch pick() {
			case 1:
				release()
			case 2:
				release()
			default:
				release()
			}`, true},
		{"switch without default leaks past the cases", `
			acquire()
			switch pick() {
			case 1:
				release()
			}`, false},
		{"release after the switch join", `
			acquire()
			switch pick() {
			case 1:
				work()
			default:
			}
			release()`, true},
		{"release in every select arm", `
			acquire()
			select {
			case <-a():
				release()
			case <-b():
				release()
			}`, true},
		{"loop may skip the body release", `
			acquire()
			for i := 0; i < n(); i++ {
				release()
			}`, false},
		{"release after the loop", `
			acquire()
			for i := 0; i < n(); i++ {
				work()
			}
			release()`, true},
		{"break path skips the release", `
			acquire()
			for {
				if cond() {
					break
				}
				release()
				return
			}`, false},
		{"panic path needs no release", `
			acquire()
			if cond() {
				panic("boom")
			}
			release()`, true},
		{"nested literal release does not count", `
			acquire()
			f := func() { release() }
			use(f)`, false},
		{"deferred-looking goroutine does not count", `
			acquire()
			go release()`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body, _ := parseBody(t, tc.body)
			g := BuildCFG(body)
			blk, idx := findCall(t, g, body, "acquire")
			got := g.EveryPath(blk, idx, func(s ast.Stmt) bool {
				return callsInStmt(s, "release")
			})
			if got != tc.want {
				t.Errorf("EveryPath = %v, want %v\nbody:%s", got, tc.want, tc.body)
			}
		})
	}
}

func TestShallowNodes(t *testing.T) {
	body, _ := parseBody(t, `
		if cond() {
			inner()
		} else {
			other()
		}`)
	ifStmt := body.List[0].(*ast.IfStmt)
	var calls []string
	for _, node := range ShallowNodes(ifStmt) {
		ast.Inspect(node, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					calls = append(calls, id.Name)
				}
			}
			return true
		})
	}
	if strings.Join(calls, ",") != "cond" {
		t.Errorf("ShallowNodes leaked body calls: %v (want only the header's cond)", calls)
	}
}

func TestFindStmtTightest(t *testing.T) {
	body, _ := parseBody(t, `
		if cond() {
			inner()
		}`)
	g := BuildCFG(body)
	// The call to inner sits in the if body's block, not in the block
	// holding the IfStmt header (whose span covers the whole statement).
	blk, idx := findCall(t, g, body, "inner")
	if idx >= len(blk.Stmts) {
		t.Fatalf("index %d out of range", idx)
	}
	if _, isIf := blk.Stmts[idx].(*ast.IfStmt); isIf {
		t.Errorf("FindStmt resolved inner() to the enclosing IfStmt header block; want the body block")
	}
}

func TestCFGTerminatesOnUnreachable(t *testing.T) {
	// Statements after return parse fine and must not wedge the
	// builder or the path query.
	body, _ := parseBody(t, `
		acquire()
		return
		release()`)
	g := BuildCFG(body)
	blk, idx := findCall(t, g, body, "acquire")
	if got := g.EveryPath(blk, idx, func(s ast.Stmt) bool { return callsInStmt(s, "release") }); got {
		t.Errorf("EveryPath = true; the only live path returns before release()")
	}
}

// TestChaosCFGConcurrency hammers the flow layer from many goroutines
// over shared ASTs — the chaos CI job runs it with -race. The builder
// and path queries must be free of hidden shared state (a regression
// here once lived in a package-level label stack).
func TestChaosCFGConcurrency(t *testing.T) {
	body, _ := parseBody(t, `
	outer:
		for i := 0; i < n(); i++ {
			acquire()
			switch pick() {
			case 1:
				continue outer
			case 2:
				break outer
			default:
				release()
			}
			select {
			case <-a():
				release()
			case <-b():
				return
			}
		}
		release()`)
	var acquirePos token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "acquire" {
				acquirePos = call.Pos()
				return false
			}
		}
		return true
	})
	if !acquirePos.IsValid() {
		t.Fatal("no acquire call in fixture body")
	}
	const workers = 16
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				g := BuildCFG(body)
				blk, idx := g.FindStmt(acquirePos)
				if blk == nil {
					t.Error("FindStmt lost the acquire statement")
					return
				}
				g.EveryPath(blk, idx, func(s ast.Stmt) bool {
					return callsInStmt(s, "release")
				})
			}
		}()
	}
	wg.Wait()
}
