package analysis

import (
	"go/ast"
	"go/types"
)

// GoroLeak guards the long-running service layers (jobs, wal, serve,
// slo) against the two classic goroutine leaks:
//
//  1. Untied spawns: a `go` statement whose goroutine has no visible
//     shutdown signal — no context or done channel in scope, no
//     WaitGroup accounting — outlives its owner and leaks across
//     Close/Shutdown. The check is cross-procedural: a named callee
//     whose summary observes cancellation (or calls WaitGroup.Done)
//     counts as tied.
//  2. Timer leaks: `time.After` inside a loop allocates a timer per
//     iteration that cannot be stopped (each one pins its channel for
//     the full duration); `time.Tick` leaks its ticker by design; a
//     `time.NewTicker` whose Stop is never reachable in the creating
//     function drips forever.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "goroutines in service packages tied to ctx/done/WaitGroup; no time.After in loops or unstopped tickers",
	Flow: true,
	Run:  runGoroLeak,
}

func runGoroLeak(p *Pass) {
	info := p.Pkg.Info
	inScope := p.Cfg.GoroutinePackages == nil || p.Cfg.GoroutinePackages[p.Pkg.ImportPath]
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if inScope {
				checkSpawns(p, info, fd)
			}
			checkTimers(p, info, fd)
		}
	}
}

// checkSpawns flags go statements whose goroutine is not visibly tied
// to a lifecycle signal.
func checkSpawns(p *Pass, info *types.Info, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if spawnTied(p, info, gs) {
			return true
		}
		p.Reportf(gs.Pos(), "goroutine is not tied to a context, done channel, or WaitGroup visible at the spawn; it will outlive Close/Shutdown (pass a ctx, select on a stop channel, or account it with wg.Add/Done)")
		return true
	})
}

// spawnTied reports whether the goroutine launched by gs has a visible
// lifecycle tie: a cancellation-typed argument, a body that watches a
// signal or settles a WaitGroup, or a callee whose summary does.
func spawnTied(p *Pass, info *types.Info, gs *ast.GoStmt) bool {
	call := gs.Call
	// A ctx/done-channel argument hands the goroutine its signal.
	for _, arg := range call.Args {
		if t := info.Types[arg].Type; t != nil && (isContextType(t) || isDoneChan(t)) {
			return true
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return litTied(p, info, lit)
	}
	// Named callee (go m.dispatch()): consult its summary.
	if f := calleeFunc(info, call); f != nil {
		if f.Pkg() != nil && f.Pkg().Path() == "context" {
			return false
		}
		sig, ok := f.Type().(*types.Signature)
		if ok {
			for i := 0; i < sig.Params().Len(); i++ {
				t := sig.Params().At(i).Type()
				if isContextType(t) || isDoneChan(t) {
					return true
				}
			}
		}
		if p.Facts != nil {
			if ff, ok := p.Facts.Funcs[FuncKey(f)]; ok && (ff.ObservesCancel || ff.WGDone) {
				return true
			}
		}
	}
	return false
}

// litTied reports whether a spawned function literal's body watches a
// cancellation signal, settles a WaitGroup, or calls a function whose
// summary does.
func litTied(p *Pass, info *types.Info, lit *ast.FuncLit) bool {
	if hasCancelSignal(info, lit) {
		return true
	}
	tied := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if tied {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(info, call)
		if f == nil {
			return true
		}
		if methodOn(f, "sync", "WaitGroup") && (f.Name() == "Done" || f.Name() == "Wait") {
			tied = true
			return false
		}
		if p.Facts != nil {
			if ff, ok := p.Facts.Funcs[FuncKey(f)]; ok && (ff.ObservesCancel || ff.WGDone) {
				tied = true
				return false
			}
		}
		return true
	})
	return tied
}

// checkTimers flags the time-package leak patterns, in every package
// (they are wrong regardless of the service-layer catalog).
func checkTimers(p *Pass, info *types.Info, fd *ast.FuncDecl) {
	// Tickers created in fd, by the object of the variable they are
	// assigned to; a ticker is fine iff t.Stop() appears somewhere in
	// the same function (typically `defer t.Stop()`).
	tickers := make(map[types.Object]*ast.CallExpr)
	stopped := make(map[types.Object]bool)

	var loopDepth int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Body != nil {
				loopDepth++
				ast.Inspect(n.Body, walk)
				loopDepth--
			}
			for _, sub := range []ast.Node{n.Init, n.Cond, n.Post} {
				if sub != nil {
					ast.Inspect(sub, walk)
				}
			}
			return false
		case *ast.RangeStmt:
			if n.Body != nil {
				loopDepth++
				ast.Inspect(n.Body, walk)
				loopDepth--
			}
			ast.Inspect(n.X, walk)
			return false
		case *ast.AssignStmt:
			// t := time.NewTicker(...)
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isPkgFunc(calleeFunc(info, call), "time", "NewTicker") {
					continue
				}
				if i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if obj := info.Defs[id]; obj != nil {
							tickers[obj] = call
							continue
						}
						if obj := info.Uses[id]; obj != nil {
							tickers[obj] = call
							continue
						}
					}
				}
				p.Reportf(call.Pos(), "time.NewTicker result is not bound to a variable that can be stopped; every ticker needs a matching Stop")
			}
		case *ast.CallExpr:
			switch {
			case isPkgFunc(calleeFunc(info, n), "time", "After") && loopDepth > 0:
				p.Reportf(n.Pos(), "time.After inside a loop allocates an unstoppable timer per iteration; hoist a time.NewTimer/NewTicker outside the loop and reuse it")
			case isPkgFunc(calleeFunc(info, n), "time", "Tick"):
				p.Reportf(n.Pos(), "time.Tick leaks its ticker (no Stop handle); use time.NewTicker with defer t.Stop()")
			}
			// t.Stop() on a tracked ticker.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Stop" {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						stopped[obj] = true
					}
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)

	for obj, call := range tickers {
		if !stopped[obj] && !tickerEscapes(info, fd, obj) {
			p.Reportf(call.Pos(), "time.NewTicker is never stopped in %s; add `defer %s.Stop()` (a running ticker leaks until GC never — its goroutine holds it live)", fd.Name.Name, obj.Name())
		}
	}
}

// tickerEscapes reports whether the ticker object is returned, stored
// into a struct/field, or captured by a function literal — cases where
// the Stop legitimately lives elsewhere and the local check must not
// fire.
func tickerEscapes(info *types.Info, fd *ast.FuncDecl, obj types.Object) bool {
	escapes := false
	var litDepth int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if escapes {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			litDepth++
			ast.Inspect(n.Body, walk)
			litDepth--
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesObj(info, res, obj) {
					escapes = true
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if _, isSel := ast.Unparen(lhs).(*ast.SelectorExpr); isSel && i < len(n.Rhs) && usesObj(info, n.Rhs[i], obj) {
					escapes = true
				}
			}
		case *ast.Ident:
			// Any use inside a nested literal: the closure may own Stop.
			if litDepth > 0 && info.Uses[n] == obj {
				escapes = true
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
	return escapes
}

// usesObj reports whether expr references obj.
func usesObj(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}
