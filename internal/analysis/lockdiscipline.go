package analysis

import (
	"go/ast"
	"go/types"
)

// LockDiscipline is the flow-aware mutex analyzer. Three invariants,
// all rooted in bugs this codebase's layers are structurally exposed
// to (worker pools, job manager, WAL, recorders):
//
//  1. Pairing: every Lock/RLock must be released on every control-flow
//     path from the acquisition to function exit — by a matching defer,
//     an explicit unlock on each path (the CFG layer proves this), or a
//     call to a function whose summary releases the class (a documented
//     lock-handoff helper).
//  2. Ordering: acquiring a catalogued lock class while holding an
//     equal- or later-ranked class (directly, or through any call chain
//     the summary layer can see) contradicts registry.LockOrder and is
//     a latent deadlock.
//  3. Coverage: every mutex declared in the catalogued packages
//     (jobs/wal/serve/obs/trace/slo) must appear in the registry
//     lock-order catalog, so invariant 2 can never silently lapse.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "locks released on all paths; cross-mutex acquisition order matches the registry lock-order catalog",
	Flow: true,
	Run:  runLockDiscipline,
}

// lockOp is one mutex method call site inside a function body.
type lockOp struct {
	call  *ast.CallExpr
	name  string // Lock, RLock, Unlock, RUnlock, TryLock, TryRLock
	expr  string // rendered receiver, e.g. "m.mu"; "" if unrenderable
	class string // lock class, e.g. "jobs.Manager.mu"; "" if local
}

func runLockDiscipline(p *Pass) {
	info := p.Pkg.Info
	checkLockCatalogCoverage(p)
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ops := collectLockOps(info, fd.Body)
			if len(ops) == 0 {
				continue
			}
			checkPairing(p, fd, ops)
			checkOrdering(p, fd)
		}
	}
}

// collectLockOps finds every mutex method call in body, excluding
// goroutine bodies (their locking belongs to the spawned goroutine's
// own analysis — the literal is also a FuncLit we do descend into
// when walking its own enclosing function? No: a go-spawned literal
// runs on another stack; its pairing is checked here too, because a
// leak there is just as real, but its ops must not be confused with
// the spawner's. They are kept: pairing is per-path from the Lock,
// and the CFG covers the literal's statements only through the go
// statement node, which EveryPath never descends into — so go-body
// ops are collected but never produce cross-talk in path queries.)
func collectLockOps(info *types.Info, body *ast.BlockStmt) []lockOp {
	var ops []lockOp
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := mutexMethod(calleeFunc(info, call))
		if !ok {
			return true
		}
		recv := lockRecv(call)
		ops = append(ops, lockOp{
			call:  call,
			name:  name,
			expr:  lockExprText(recv),
			class: LockClass(info, recv),
		})
		return true
	})
	return ops
}

// checkPairing proves each acquisition is released on every path to
// exit. Works per goroutine body: the function's own statements are
// checked against the function's CFG; each go-spawned or deferred
// function literal gets its own CFG.
func checkPairing(p *Pass, fd *ast.FuncDecl, ops []lockOp) {
	// Bodies to check independently: the function itself plus every
	// function literal (deferred, spawned, or stored — each runs with
	// its own stack frame and must balance its own acquisitions,
	// except that a literal may legitimately release a lock its
	// parent acquired, which the parent's path query sees as the
	// deferred release).
	checkPairingBody(p, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkPairingBody(p, lit.Body)
		}
		return true
	})
}

// checkPairingBody runs the path query for every acquisition whose
// call site sits directly in body (not in a nested function literal).
func checkPairingBody(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info
	g := BuildCFG(body)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != ast.Node(body) {
			return false // nested literal: its own checkPairingBody call
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := mutexMethod(calleeFunc(info, call))
		if !ok || (name != "Lock" && name != "RLock") {
			return true
		}
		recv := lockRecv(call)
		expr := lockExprText(recv)
		if expr == "" {
			return true // unrenderable receiver: skip conservatively
		}
		class := LockClass(info, recv)
		blk, idx := g.FindStmt(call.Pos())
		if blk == nil {
			return true
		}
		want := "Unlock"
		if name == "RLock" {
			want = "RUnlock"
		}
		released := g.EveryPath(blk, idx, func(s ast.Stmt) bool {
			return stmtReleases(p, s, expr, class, want)
		})
		if !released {
			p.Reportf(call.Pos(), "%s.%s() is not released on every path to return: pair it with `defer %s.%s()` right after the acquisition, or unlock on each branch", expr, name, expr, want)
		}
		return true
	})
	// Kind mismatch: an RLock paired with Unlock (or Lock with
	// RUnlock) compiles and mostly works — until the other kind shows
	// up. Flag per body when the same expression mixes kinds.
	kinds := make(map[string]map[string]*ast.CallExpr)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := mutexMethod(calleeFunc(info, call))
		if !ok {
			return true
		}
		expr := lockExprText(lockRecv(call))
		if expr == "" {
			return true
		}
		if kinds[expr] == nil {
			kinds[expr] = make(map[string]*ast.CallExpr)
		}
		kinds[expr][name] = call
		return true
	})
	for expr, seen := range kinds {
		if c, ok := seen["RLock"]; ok {
			if _, unlock := seen["Unlock"]; unlock {
				if _, lock := seen["Lock"]; !lock {
					p.Reportf(c.Pos(), "%s mixes RLock with Unlock in one function; a read lock must be released with RUnlock", expr)
				}
			}
		}
		if c, ok := seen["Lock"]; ok {
			if _, runlock := seen["RUnlock"]; runlock {
				if _, rlock := seen["RLock"]; !rlock {
					p.Reportf(c.Pos(), "%s mixes Lock with RUnlock in one function; a write lock must be released with Unlock", expr)
				}
			}
		}
	}
}

// stmtReleases reports whether s releases the lock named by expr (and
// class): a direct matching unlock call, a defer of one (directly or
// via a deferred closure), or a call to a module function whose
// summary releases the class.
func stmtReleases(p *Pass, s ast.Stmt, expr, class, want string) bool {
	info := p.Pkg.Info
	released := false
	scan := func(n ast.Node) bool {
		if released {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(info, call)
		if name, ok := mutexMethod(f); ok {
			if name == want && lockExprText(lockRecv(call)) == expr {
				released = true
				return false
			}
			return true
		}
		// Lock-handoff helper: a callee whose summary releases the
		// class counts as the release on this path.
		if class != "" && f != nil && p.Facts != nil {
			if ff, ok := p.Facts.Funcs[FuncKey(f)]; ok && ff.Releases[class] {
				released = true
				return false
			}
		}
		return true
	}
	for _, node := range ShallowNodes(s) {
		if released {
			break
		}
		if ds, ok := node.(*ast.DeferStmt); ok {
			// A deferred release (direct or via closure body) runs on
			// every exit from this point on.
			ast.Inspect(ds.Call, scan)
			if lit, ok := ds.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, scan)
			}
			continue
		}
		// Skip goroutine bodies and stored closures: a release on
		// another stack (or at an unknown later time) does not release
		// this path.
		ast.Inspect(node, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.GoStmt, *ast.FuncLit:
				return false
			}
			return scan(n)
		})
	}
	return released
}

// checkOrdering walks fd lexically, tracking the set of held lock
// classes, and reports acquisitions (direct, or transitive through a
// called function's summary) that contradict the registry lock
// order. Goroutine bodies are skipped: a spawned goroutine does not
// extend this stack's hold chain.
func checkOrdering(p *Pass, fd *ast.FuncDecl) {
	info := p.Pkg.Info
	order := p.Cfg.LockOrder
	if order == nil {
		return
	}
	held := make(map[string]string) // expr text → class
	heldClass := func() map[string]bool {
		out := make(map[string]bool, len(held))
		for _, c := range held {
			out[c] = true
		}
		return out
	}
	checkEdge := func(pos ast.Node, acquired string, via string) {
		aRank, aOK := order[acquired]
		if !aOK {
			return
		}
		for h := range heldClass() {
			hRank, hOK := order[h]
			if !hOK {
				continue
			}
			switch {
			case h == acquired:
				p.Reportf(pos.Pos(), "recursive acquisition of %s while already holding it%s; sync mutexes self-deadlock", acquired, via)
			case hRank >= aRank:
				p.Reportf(pos.Pos(), "acquiring %s while holding %s%s inverts the registry lock order (%s ranks before %s in registry.LockOrder)", acquired, h, via, acquired, h)
			}
		}
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false // another stack: no hold-chain extension
		case *ast.DeferStmt:
			// A deferred unlock keeps the class held for the remainder
			// of the walk (it releases only at exit) — so do not
			// process it as a release; a deferred acquire (rare) is
			// still an edge.
			if name, ok := mutexMethod(calleeFunc(info, n.Call)); ok {
				if name == "Lock" || name == "RLock" {
					checkEdge(n, LockClass(info, lockRecv(n.Call)), "")
				}
				return false
			}
			return true
		case *ast.CallExpr:
			f := calleeFunc(info, n)
			if name, ok := mutexMethod(f); ok {
				recv := lockRecv(n)
				expr := lockExprText(recv)
				class := LockClass(info, recv)
				switch name {
				case "Lock", "RLock", "TryLock", "TryRLock":
					if class != "" {
						checkEdge(n, class, "")
					}
					if expr != "" {
						held[expr] = class
					}
				case "Unlock", "RUnlock":
					if expr != "" {
						delete(held, expr)
					}
				}
				return true
			}
			// Call edge: the callee's transitive acquisitions happen
			// while this stack holds the current set.
			if f != nil && p.Facts != nil && len(held) > 0 {
				if ff, ok := p.Facts.Funcs[FuncKey(f)]; ok {
					for class := range ff.Acquires {
						checkEdge(n, class, " (via call to "+ff.Display+")")
					}
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// checkLockCatalogCoverage reports mutexes declared in catalogued
// packages that registry.LockOrder does not rank.
func checkLockCatalogCoverage(p *Pass) {
	if !p.Cfg.LockCatalogPackages[p.Pkg.ImportPath] || p.Cfg.LockOrder == nil {
		return
	}
	short := p.Pkg.Types.Name()
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				t := p.Pkg.Info.Types[field.Type].Type
				if t == nil || !isMutexType(t) {
					continue
				}
				for _, name := range field.Names {
					class := short + "." + ts.Name.Name + "." + name.Name
					if _, ok := p.Cfg.LockOrder[class]; !ok {
						p.Reportf(name.Pos(), "mutex %s is not in the registry lock-order catalog; add it to registry.LockOrder at its nesting rank", class)
					}
				}
			}
			return true
		})
		// Package-level mutex vars.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := p.Pkg.Info.Defs[name].(*types.Var)
					if !ok || obj.Parent() != p.Pkg.Types.Scope() || !isMutexType(obj.Type()) {
						continue
					}
					class := short + "." + name.Name
					if _, ok := p.Cfg.LockOrder[class]; !ok {
						p.Reportf(name.Pos(), "mutex %s is not in the registry lock-order catalog; add it to registry.LockOrder at its nesting rank", class)
					}
				}
			}
		}
	}
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
