package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands in non-test
// code. The pipeline's guarantees rest on robust numerics (Huber
// losses, IRLS/ADMM solves, MAD scale estimates); exact equality on
// computed floats is almost always a latent bug — compare with a
// tolerance instead. Two shapes stay legal: comparison against an
// exact constant zero (the division-by-zero guard idiom, well-defined
// in IEEE 754) and fully constant-folded comparisons.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "no ==/!= on computed floating-point values outside *_test.go",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, ty := info.Types[be.X], info.Types[be.Y]
			if !isFloaty(tx.Type) && !isFloaty(ty.Type) {
				return true
			}
			if tx.Value != nil && ty.Value != nil {
				return true // constant-folded at compile time
			}
			if isZeroConst(tx) || isZeroConst(ty) {
				return true // exact divide-by-zero / degenerate-scale guard
			}
			p.Reportf(be.OpPos, "floating-point %s on computed values; robust numerics must compare with a tolerance (e.g. math.Abs(a-b) <= eps)", be.Op)
			return true
		})
	}
}

// isZeroConst reports whether tv is a numeric compile-time constant
// equal to zero.
func isZeroConst(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
