package analysis

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file feeds the hotalloc analyzer ground truth from the
// compiler: `go build -gcflags=-m` escape-analysis diagnostics,
// parsed into per-line notes. The build runs against a throwaway
// GOCACHE — a warm cache suppresses the diagnostics for any package
// it already holds, which would silently blind the analyzer — so the
// result is cached to a file (the rplint -facts cache) keyed by a
// content hash of the module's sources, exactly like the go-list
// cache is keyed by the module layout.

// EscapeFacts maps "module-relative-file.go:line" to the compiler's
// heap-relevant diagnostics for that line ("moved to heap: x",
// "... escapes to heap").
type EscapeFacts struct {
	Key   string              `json:"key"`   // SourceHash at computation time
	Notes map[string][]string `json:"notes"` // file:line → messages
}

// escapeNoteRe matches one compiler diagnostic line. The -m output
// interleaves inlining chatter; only heap decisions are kept.
var escapeNoteRe = regexp.MustCompile(`^(.+\.go):(\d+):(?:\d+): (.*)$`)

// heapRelevant reports whether a -m diagnostic describes an
// allocation decision rather than inlining chatter.
func heapRelevant(msg string) bool {
	return strings.Contains(msg, "escapes to heap") || strings.Contains(msg, "moved to heap")
}

// ParseEscape parses `go build -gcflags=-m` stderr into EscapeFacts
// notes. File paths are normalized to slash-separated module-relative
// form.
func ParseEscape(r io.Reader) (map[string][]string, error) {
	notes := make(map[string][]string)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") { // package clause separator
			continue
		}
		m := escapeNoteRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[3]
		if !heapRelevant(msg) {
			continue
		}
		ln, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		key := fmt.Sprintf("%s:%d", filepath.ToSlash(m[1]), ln)
		notes[key] = append(notes[key], msg)
	}
	return notes, sc.Err()
}

// SourceHash fingerprints the module's compilable surface: go.mod
// plus every .go file's path and content, in sorted order. Anything
// that can change the compiler's escape verdicts changes the hash.
// Directories that cannot hold buildable module code (.git, .cache,
// testdata) are skipped.
func SourceHash(moduleDir string) (string, error) {
	h := sha256.New()
	if data, err := os.ReadFile(filepath.Join(moduleDir, "go.mod")); err == nil {
		h.Write(data)
	}
	var files []string
	err := filepath.WalkDir(moduleDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", ".cache", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	sort.Strings(files)
	for _, f := range files {
		rel, err := filepath.Rel(moduleDir, f)
		if err != nil {
			rel = f
		}
		io.WriteString(h, filepath.ToSlash(rel))
		data, err := os.ReadFile(f)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, ":%d:", len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ComputeEscape runs the compiler's escape analysis over patterns and
// parses the verdicts. The build uses a throwaway GOCACHE so every
// module package actually compiles (a cache hit emits no -m output);
// that makes this the expensive step of a lint run, which is why
// LoadEscape caches the parsed result.
func ComputeEscape(moduleDir string, patterns []string) (*EscapeFacts, error) {
	tmp, err := os.MkdirTemp("", "rplint-escape-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	gocache := filepath.Join(tmp, "gocache")
	outDir := filepath.Join(tmp, "bin")
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, err
	}
	args := append([]string{"build", "-gcflags=-m", "-o", outDir, "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	cmd.Env = append(os.Environ(), "GOCACHE="+gocache, "GOFLAGS=")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go build -gcflags=-m: %w\n%s", err, stderr.String())
	}
	notes, err := ParseEscape(&stderr)
	if err != nil {
		return nil, err
	}
	key, err := SourceHash(moduleDir)
	if err != nil {
		return nil, err
	}
	return &EscapeFacts{Key: key, Notes: notes}, nil
}

// LoadEscape returns escape facts for the module, reusing cacheFile
// when its key matches the current SourceHash and recomputing (and
// rewriting the cache) otherwise. An empty cacheFile always
// recomputes.
func LoadEscape(moduleDir string, patterns []string, cacheFile string) (*EscapeFacts, error) {
	var want string
	if cacheFile != "" {
		var err error
		want, err = SourceHash(moduleDir)
		if err != nil {
			return nil, err
		}
		if data, err := os.ReadFile(cacheFile); err == nil {
			ef := new(EscapeFacts)
			if err := json.Unmarshal(data, ef); err == nil && ef.Key == want && ef.Notes != nil {
				return ef, nil
			}
		}
	}
	ef, err := ComputeEscape(moduleDir, patterns)
	if err != nil {
		return nil, err
	}
	if cacheFile != "" {
		ef.Key = want
		if data, err := json.MarshalIndent(ef, "", "\t"); err == nil {
			if err := os.MkdirAll(filepath.Dir(cacheFile), 0o755); err == nil {
				_ = os.WriteFile(cacheFile, data, 0o644)
			}
		}
	}
	return ef, nil
}
