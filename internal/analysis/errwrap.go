package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ErrWrap enforces the error-chain discipline the service layers rely
// on: sentinel errors (package-level Err* variables) are compared with
// errors.Is, never ==/!=, and fmt.Errorf wraps error values with %w,
// not %v/%s. Both shapes break silently the moment an intermediate
// layer wraps an error: the == comparison stops matching and the %v
// chain loses errors.Is/As visibility.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "sentinel errors compared with errors.Is and wrapped with %w",
	Run:  runErrWrap,
}

func runErrWrap(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op != token.EQL && e.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{e.X, e.Y} {
					v := pkgLevelVar(info, side)
					if v == nil || !strings.HasPrefix(v.Name(), "Err") || !isErrorType(v.Type()) {
						continue
					}
					p.Reportf(e.OpPos, "sentinel comparison %s %s breaks once the error is wrapped; use errors.Is(err, %s)", e.Op, v.Name(), v.Name())
					break
				}
			case *ast.CallExpr:
				if fn := calleeFunc(info, e); isPkgFunc(fn, "fmt", "Errorf") {
					checkErrorf(p, e)
				}
			}
			return true
		})
	}
}

// checkErrorf walks the constant format string of a fmt.Errorf call
// and flags %v/%s verbs whose corresponding argument is an error:
// those must be %w to keep the chain inspectable. Explicit argument
// indexes (%[n]d) abandon the walk — positional bookkeeping is not
// worth encoding here.
func checkErrorf(p *Pass, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	format, ok := constString(p.Pkg.Info, call.Args[0])
	if !ok {
		return
	}
	arg := 1 // next operand after the format string
	for i := 0; i < len(format); {
		if format[i] != '%' {
			i++
			continue
		}
		i++ // past '%'
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		// flags
		for i < len(format) && strings.ContainsRune("#+- 0", rune(format[i])) {
			i++
		}
		// width
		if i < len(format) && format[i] == '*' {
			arg++
			i++
		} else {
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
		}
		// precision
		if i < len(format) && format[i] == '.' {
			i++
			if i < len(format) && format[i] == '*' {
				arg++
				i++
			} else {
				for i < len(format) && format[i] >= '0' && format[i] <= '9' {
					i++
				}
			}
		}
		if i >= len(format) {
			return
		}
		verb := format[i]
		i++
		if verb == '[' {
			return // explicit argument index; bail rather than miscount
		}
		if (verb == 'v' || verb == 's') && arg < len(call.Args) {
			if tv, ok := p.Pkg.Info.Types[call.Args[arg]]; ok && isErrorType(tv.Type) {
				p.Reportf(call.Args[arg].Pos(), "error formatted with %%%c loses the chain; use %%w so callers can errors.Is/As through the wrap", verb)
			}
		}
		arg++
	}
}
