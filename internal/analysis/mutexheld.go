package analysis

import (
	"go/ast"
)

// MutexHeld guards against the global-expvar-registration panic class
// that PR 2 designed around: expvar.NewInt/NewMap/Publish register
// into a process-global table and panic on the second registration of
// the same name — which is exactly what happens when a Server is
// constructed twice (tests, embedding, restarts). Library packages
// must hold per-instance vars (new(expvar.Map).Init(), plain struct
// fields) and expose them through their own handlers. Global
// registration stays legal in package main and in init/package-level
// var initializers, where construction happens exactly once.
var MutexHeld = &Analyzer{
	Name: "mutexheld",
	Doc:  "no global expvar registration from library code paths that can run twice",
	Run:  runMutexHeld,
}

var expvarRegisterFuncs = map[string]bool{
	"NewInt":    true,
	"NewFloat":  true,
	"NewMap":    true,
	"NewString": true,
	"Publish":   true,
}

func runMutexHeld(p *Pass) {
	if p.Pkg.Types != nil && p.Pkg.Types.Name() == "main" {
		return
	}
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == "init" && fd.Recv == nil {
				continue // runs once per process by construction
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "expvar" || !expvarRegisterFuncs[fn.Name()] {
					return true
				}
				p.Reportf(call.Pos(), "expvar.%s registers globally and panics if this code path runs twice (second Server, test re-construction); hold per-instance vars (new(expvar.Map).Init()) instead", fn.Name())
				return true
			})
		}
	}
}
