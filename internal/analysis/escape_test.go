package analysis

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestParseEscape(t *testing.T) {
	out := strings.Join([]string{
		"# robustperiod/internal/trace",
		"internal/trace/span.go:42:6: can inline (*Recording).len",
		"internal/trace/span.go:57:14: s escapes to heap",
		"internal/trace/span.go:57:30: []Span{...} escapes to heap",
		"internal/trace/trace.go:12:2: moved to heap: buf",
		"not a diagnostic line",
	}, "\n")
	notes, err := ParseEscape(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(notes["internal/trace/span.go:57"]); got != 2 {
		t.Errorf("want 2 notes at span.go:57, got %d (%v)", got, notes)
	}
	if got := notes["internal/trace/trace.go:12"]; len(got) != 1 || got[0] != "moved to heap: buf" {
		t.Errorf("trace.go:12 = %v, want the moved-to-heap note", got)
	}
	if _, ok := notes["internal/trace/span.go:42"]; ok {
		t.Error("inlining chatter must be dropped")
	}
}

func TestSourceHash(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tmp\n\ngo 1.21\n")
	write("a/a.go", "package a\n")

	h1, err := SourceHash(dir)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := SourceHash(dir)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("hash must be deterministic")
	}

	// Editing file CONTENT must change the hash (escape verdicts depend
	// on bodies, unlike the go-list cache key).
	write("a/a.go", "package a\n\nfunc F() {}\n")
	h3, err := SourceHash(dir)
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Error("content edit must change the source hash")
	}

	// testdata is not compiled into the module; it must not disturb
	// the key.
	write("a/testdata/fixture.go", "package fixture\n")
	h4, err := SourceHash(dir)
	if err != nil {
		t.Fatal(err)
	}
	if h4 != h3 {
		t.Error("testdata files must not affect the source hash")
	}
}

// TestHotAllocEscapeRegression seeds a compiler escape verdict inside a
// hot function whose AST checks are clean (HotPrealloc) and asserts
// hotalloc surfaces it — the cross-check that keeps the analyzer in
// agreement with the AllocsPerRun pins even for allocations the AST
// heuristics cannot see.
func TestHotAllocEscapeRegression(t *testing.T) {
	l := fixtureLoader(t)
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "hotalloc"))
	if err != nil {
		t.Fatal(err)
	}
	importPath := "fixture/hotalloc"
	pkg, err := l.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading hotalloc fixture: %v", err)
	}
	cfg := fixtureConfig(l, dir, importPath)

	// Locate HotPrealloc's make line in the fixture source.
	src, err := os.ReadFile(filepath.Join(dir, "a.go"))
	if err != nil {
		t.Fatal(err)
	}
	line := 0
	for i, l := range strings.Split(string(src), "\n") {
		if strings.Contains(l, "out := make([]int, 0, len(xs))") {
			line = i + 1
			break
		}
	}
	if line == 0 {
		t.Fatal("fixture drifted: no make line in HotPrealloc")
	}

	// Without escape facts: clean (the AST checks accept the
	// preallocated append).
	clean := 0
	for _, f := range Run([]*Package{pkg}, cfg, []*Analyzer{HotAlloc}) {
		if strings.Contains(f.Message, "HotPrealloc") {
			clean++
		}
	}
	if clean != 0 {
		t.Fatalf("HotPrealloc should be AST-clean, got %d findings", clean)
	}

	// With a seeded verdict: the same function now fails the gate.
	cfg.Escape = map[string][]string{
		"a.go:" + strconv.Itoa(line): {"make([]int, 0, len(xs)) escapes to heap"},
	}
	found := false
	for _, f := range Run([]*Package{pkg}, cfg, []*Analyzer{HotAlloc}) {
		if strings.Contains(f.Message, "HotPrealloc") && strings.Contains(f.Message, "escapes to heap") {
			found = true
		}
	}
	if !found {
		t.Error("seeded escape verdict in a hot function did not surface as a hotalloc finding")
	}
}
