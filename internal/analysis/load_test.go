package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// tmpModule lays out a minimal module for cache-key tests.
func tmpModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tmpmod\n\ngo 1.21\n")
	write("a/a.go", "package a\n\nfunc A() {}\n")
	return dir
}

func TestListCacheKey(t *testing.T) {
	dir := tmpModule(t)
	key1, err := ListCacheKey(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Content-only edits don't change package metadata, so the key
	// must hold (this is what keeps warm CI caches warm).
	if err := os.WriteFile(filepath.Join(dir, "a", "a.go"), []byte("package a\n\nfunc A() int { return 1 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	key2, err := ListCacheKey(dir)
	if err != nil {
		t.Fatal(err)
	}
	if key2 != key1 {
		t.Error("content-only edit must not change the list cache key")
	}

	// Adding a source file changes the layout: new key.
	if err := os.WriteFile(filepath.Join(dir, "a", "b.go"), []byte("package a\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	key3, err := ListCacheKey(dir)
	if err != nil {
		t.Fatal(err)
	}
	if key3 == key1 {
		t.Error("adding a source file must change the list cache key")
	}

	// Editing go.mod changes resolution: new key.
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmpmod2\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	key4, err := ListCacheKey(dir)
	if err != nil {
		t.Fatal(err)
	}
	if key4 == key3 {
		t.Error("editing go.mod must change the list cache key")
	}
}

// TestListCacheStaleness is the satellite regression test for the bug
// where .cache/golist.json survived module layout changes: a cache
// written against one layout must be regenerated — not trusted — once
// a package is added.
func TestListCacheStaleness(t *testing.T) {
	dir := tmpModule(t)
	cacheFile := filepath.Join(dir, ".cache", "golist.json")

	out1, err := List(dir, []string{"./..."}, cacheFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(out1.Packages) != 1 {
		t.Fatalf("want 1 package, got %d", len(out1.Packages))
	}
	if out1.Key == "" {
		t.Fatal("cache-backed List must stamp the layout key")
	}

	// Same layout: the cache must be reused verbatim. Plant a marker
	// to prove the file is what gets returned.
	marked := *out1
	marked.ModulePath = "tmpmod-marker"
	data, err := json.MarshalIndent(&marked, "", "\t")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cacheFile, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out2, err := List(dir, []string{"./..."}, cacheFile)
	if err != nil {
		t.Fatal(err)
	}
	if out2.ModulePath != "tmpmod-marker" {
		t.Error("unchanged layout must serve the cached output")
	}

	// New package: the marked cache is now stale and must be thrown
	// away, not served.
	if err := os.MkdirAll(filepath.Join(dir, "b"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b", "b.go"), []byte("package b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out3, err := List(dir, []string{"./..."}, cacheFile)
	if err != nil {
		t.Fatal(err)
	}
	if out3.ModulePath == "tmpmod-marker" {
		t.Fatal("stale cache served after the module layout changed")
	}
	if len(out3.Packages) != 2 {
		t.Errorf("regenerated list should see 2 packages, got %d", len(out3.Packages))
	}

	// And the regeneration must have rewritten the cache with the new
	// key, so the next run reuses it.
	fresh, err := os.ReadFile(cacheFile)
	if err != nil {
		t.Fatal(err)
	}
	cached := new(ListOutput)
	if err := json.Unmarshal(fresh, cached); err != nil {
		t.Fatal(err)
	}
	wantKey, err := ListCacheKey(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Key != wantKey {
		t.Error("regenerated cache was not stamped with the current layout key")
	}
}
