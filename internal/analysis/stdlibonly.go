package analysis

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// StdlibOnly enforces the DESIGN.md purity rule: non-test code may
// import only the standard library and this module's own packages. A
// third-party dependency slipping in would silently void the
// reproduction's "stdlib-only" guarantee (and break the container
// builds, which never fetch modules).
var StdlibOnly = &Analyzer{
	Name: "stdlibonly",
	Doc:  "non-test code imports only the standard library and module-internal packages",
	Run:  runStdlibOnly,
}

func runStdlibOnly(p *Pass) {
	stdlib := make(map[string]bool)
	isStd := func(path string) bool {
		if v, ok := stdlib[path]; ok {
			return v
		}
		info, err := os.Stat(filepath.Join(p.Cfg.GoRoot, "src", filepath.FromSlash(path)))
		v := err == nil && info.IsDir()
		stdlib[path] = v
		return v
	}
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "C" {
				p.Reportf(imp.Pos(), "cgo import: the reproduction is pure Go (DESIGN.md stdlib-only rule)")
				continue
			}
			if path == p.Cfg.ModulePath || strings.HasPrefix(path, p.Cfg.ModulePath+"/") {
				continue
			}
			if isStd(path) {
				continue
			}
			p.Reportf(imp.Pos(), "import %q is neither standard library nor module-internal (DESIGN.md stdlib-only rule)", path)
		}
	}
}
