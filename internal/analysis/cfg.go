package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the flow layer under the concurrency analyzers: a
// lightweight intra-procedural control-flow graph built from a
// function body's AST. It is deliberately smaller than a compiler
// CFG — statements stay whole (a statement is the unit of matching
// for lock/unlock pairing), expressions are never split, and the only
// control constructs modeled are the ones that change which
// statements can execute next: if/else, for, range, switch, type
// switch, select, return, break, continue, and labeled variants.
// goto falls through (the tree does not use it; modeling it as a jump
// would need label-resolution machinery for zero benefit), and a
// call to panic or runtime.Goexit dead-ends its path: a crashing path
// is not a path to return, so all-paths queries don't demand cleanup
// on it (deferred releases run during the unwind regardless).

// Block is one basic block: a maximal run of statements with a single
// entry and no internal control transfer. Succs lists every block
// control can reach next; the synthetic Exit block has none.
type Block struct {
	Index int
	Stmts []ast.Stmt
	Succs []*Block
}

// CFG is the control-flow graph of one function body. Entry is where
// execution starts; Exit is the single synthetic block every returning
// path reaches (explicit returns and falling off the end edge to it;
// panic/Goexit paths dead-end instead).
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block // every block, Entry first, Exit last
}

// BuildCFG constructs the control-flow graph of body. A nil body
// (declaration without definition) yields a two-block graph with
// Entry wired straight to Exit.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = &Block{}
	b.cur = b.cfg.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edgeTo(b.cfg.Exit) // falling off the end returns
	b.cfg.Exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

// loopScope tracks where break and continue jump for one enclosing
// loop, switch, or select. Switch/select scopes have a nil cont.
type loopScope struct {
	label string
	brk   *Block
	cont  *Block
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block // nil after a terminating statement (return/panic/branch)
	scopes []loopScope
	labels []labelEntry // pending labels for the construct being built
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edgeTo links the current block to next, if control can still flow.
func (b *cfgBuilder) edgeTo(next *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, next)
	}
}

// startBlock makes next the current block.
func (b *cfgBuilder) startBlock(next *Block) {
	b.cur = next
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// stmt appends one statement to the graph, splitting blocks at every
// control transfer.
func (b *cfgBuilder) stmt(s ast.Stmt) {
	if b.cur == nil {
		// Unreachable code after return/break; give it its own block so
		// analyzers still see the statements, but nothing edges into it.
		b.startBlock(b.newBlock())
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.Stmts = append(b.cur.Stmts, s.Init)
		}
		cond := b.cur
		cond.Stmts = append(cond.Stmts, s) // the If node itself marks the condition
		join := b.newBlock()
		then := b.newBlock()
		cond.Succs = append(cond.Succs, then)
		b.startBlock(then)
		b.stmtList(s.Body.List)
		b.edgeTo(join)
		if s.Else != nil {
			els := b.newBlock()
			cond.Succs = append(cond.Succs, els)
			b.startBlock(els)
			b.stmt(s.Else)
			b.edgeTo(join)
		} else {
			cond.Succs = append(cond.Succs, join)
		}
		b.startBlock(join)

	case *ast.ForStmt:
		if s.Init != nil {
			b.cur.Stmts = append(b.cur.Stmts, s.Init)
		}
		head := b.newBlock()
		b.edgeTo(head)
		head.Stmts = append(head.Stmts, s) // the For node marks the condition
		after := b.newBlock()
		if s.Cond != nil {
			head.Succs = append(head.Succs, after) // condition false exits the loop
		}
		body := b.newBlock()
		head.Succs = append(head.Succs, body)
		b.pushScope(b.labelOf(s), after, head)
		b.startBlock(body)
		b.stmtList(s.Body.List)
		if s.Post != nil && b.cur != nil {
			b.cur.Stmts = append(b.cur.Stmts, s.Post)
		}
		b.edgeTo(head)
		b.popScope()
		b.startBlock(after)

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edgeTo(head)
		head.Stmts = append(head.Stmts, s)
		after := b.newBlock()
		head.Succs = append(head.Succs, after) // empty collection
		body := b.newBlock()
		head.Succs = append(head.Succs, body)
		b.pushScope(b.labelOf(s), after, head)
		b.startBlock(body)
		b.stmtList(s.Body.List)
		b.edgeTo(head)
		b.popScope()
		b.startBlock(after)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var clauses []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			init, clauses = sw.Init, sw.Body.List
		case *ast.TypeSwitchStmt:
			init, clauses = sw.Init, sw.Body.List
		}
		if init != nil {
			b.cur.Stmts = append(b.cur.Stmts, init)
		}
		head := b.cur
		head.Stmts = append(head.Stmts, s)
		join := b.newBlock()
		b.pushScope(b.labelOf(s), join, nil)
		hasDefault := false
		var caseBlocks []*Block
		var caseBodies [][]ast.Stmt
		for _, c := range clauses {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			blk := b.newBlock()
			head.Succs = append(head.Succs, blk)
			caseBlocks = append(caseBlocks, blk)
			caseBodies = append(caseBodies, cc.Body)
		}
		for i, blk := range caseBlocks {
			b.startBlock(blk)
			b.stmtList(caseBodies[i])
			// fallthrough edges to the next case body
			if ft := endsInFallthrough(caseBodies[i]); ft && i+1 < len(caseBlocks) {
				b.edgeTo(caseBlocks[i+1])
			} else {
				b.edgeTo(join)
			}
		}
		if !hasDefault {
			head.Succs = append(head.Succs, join)
		}
		b.popScope()
		b.startBlock(join)

	case *ast.SelectStmt:
		head := b.cur
		head.Stmts = append(head.Stmts, s)
		join := b.newBlock()
		b.pushScope(b.labelOf(s), join, nil)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			head.Succs = append(head.Succs, blk)
			b.startBlock(blk)
			if cc.Comm != nil {
				blk.Stmts = append(blk.Stmts, cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edgeTo(join)
		}
		b.popScope()
		b.startBlock(join)

	case *ast.LabeledStmt:
		b.labeled(s)

	case *ast.ReturnStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		b.edgeTo(b.cfg.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := b.findScope(label, false); t != nil {
				b.edgeTo(t)
			}
			b.cur = nil
		case token.CONTINUE:
			if t := b.findScope(label, true); t != nil {
				b.edgeTo(t)
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// handled by the switch builder; the statement is recorded
		case token.GOTO:
			// not modeled: fall through (see the file comment)
		}

	case *ast.ExprStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		if isTerminatingCall(s.X) {
			// Dead end, not an Exit edge: a panicking path is not a
			// path to return, so all-paths queries (lock released on
			// every path to return) don't demand cleanup on it —
			// deferred releases still run during the unwind anyway.
			b.cur = nil
		}

	default:
		// assignments, declarations, go, defer, send, inc/dec, empty —
		// straight-line statements.
		b.cur.Stmts = append(b.cur.Stmts, s)
	}
}

// labeled wires a labeled loop/switch so that labeled break/continue
// resolve; other labeled statements just pass through.
func (b *cfgBuilder) labeled(s *ast.LabeledStmt) {
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.labels = append(b.labels, labelEntry{stmt: inner, label: s.Label.Name})
		b.stmt(inner)
		b.labels = b.labels[:len(b.labels)-1]
	default:
		b.stmt(s.Stmt)
	}
}

// labelEntry carries the pending label across the recursive stmt call
// for the labeled construct it wraps.
type labelEntry struct {
	stmt  ast.Stmt
	label string
}

func (b *cfgBuilder) labelOf(s ast.Stmt) string {
	for i := len(b.labels) - 1; i >= 0; i-- {
		if b.labels[i].stmt == s {
			return b.labels[i].label
		}
	}
	return ""
}

func (b *cfgBuilder) pushScope(label string, brk, cont *Block) {
	b.scopes = append(b.scopes, loopScope{label: label, brk: brk, cont: cont})
}

func (b *cfgBuilder) popScope() {
	b.scopes = b.scopes[:len(b.scopes)-1]
}

// findScope resolves a break (wantCont=false) or continue
// (wantCont=true) target, optionally by label.
func (b *cfgBuilder) findScope(label string, wantCont bool) *Block {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := b.scopes[i]
		if wantCont && sc.cont == nil {
			continue // break-only scope (switch/select)
		}
		if label != "" && sc.label != label {
			continue
		}
		if wantCont {
			return sc.cont
		}
		return sc.brk
	}
	return nil
}

// endsInFallthrough reports whether the clause body's last statement
// is a fallthrough.
func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// isTerminatingCall reports whether expr is a call that never returns:
// the panic builtin or runtime.Goexit. os.Exit is deliberately not
// here — deferred unlocks do NOT run on os.Exit, so treating it as a
// clean exit would hide lock leaks.
func isTerminatingCall(expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name == "runtime" && fun.Sel.Name == "Goexit"
		}
	}
	return false
}

// ShallowNodes returns the AST nodes a block-resident statement
// contributes to path scans. Compound statements sit in the block
// that evaluates their header (condition/tag), while their bodies
// live in successor blocks — so only the header expressions are
// scanned here, never the nested statements (those are visited when
// their own block is walked).
func ShallowNodes(s ast.Stmt) []ast.Node {
	var out []ast.Node
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Cond != nil {
			out = append(out, s.Cond)
		}
	case *ast.ForStmt:
		if s.Cond != nil {
			out = append(out, s.Cond)
		}
	case *ast.RangeStmt:
		if s.Key != nil {
			out = append(out, s.Key)
		}
		if s.Value != nil {
			out = append(out, s.Value)
		}
		out = append(out, s.X)
	case *ast.SwitchStmt:
		if s.Tag != nil {
			out = append(out, s.Tag)
		}
	case *ast.TypeSwitchStmt:
		out = append(out, s.Assign)
	case *ast.SelectStmt:
		// nothing: the comm clauses are successor blocks
	default:
		out = append(out, s)
	}
	return out
}

// EveryPath walks every acyclic path from the statement at (start,
// idx+1) — i.e. just after Stmts[idx] of block start — to Exit, and
// reports whether visit returns true somewhere on each such path
// before it reaches Exit. visit is called once per statement in path
// order; returning true satisfies the current path. Cycles are cut by
// a visited set, which is exact for this query: a block explored once
// in the unsatisfied state covers every later arrival in that state.
func (g *CFG) EveryPath(start *Block, idx int, visit func(ast.Stmt) bool) bool {
	visited := make(map[*Block]bool)
	var walk func(blk *Block, from int) bool
	walk = func(blk *Block, from int) bool {
		for i := from; i < len(blk.Stmts); i++ {
			if visit(blk.Stmts[i]) {
				return true
			}
		}
		if blk == g.Exit {
			return false // reached exit without satisfaction
		}
		if len(blk.Succs) == 0 {
			// Dead-end block (break/continue with no target under
			// malformed code): not a path to exit.
			return true
		}
		for _, s := range blk.Succs {
			if s == g.Exit {
				return false
			}
			if visited[s] {
				continue
			}
			visited[s] = true
			if !walk(s, 0) {
				return false
			}
		}
		return true
	}
	return walk(start, idx+1)
}

// FindStmt locates the block and statement index containing pos
// (matching by source span). Returns (nil, -1) if no recorded
// statement spans pos.
func (g *CFG) FindStmt(pos token.Pos) (*Block, int) {
	best := (*Block)(nil)
	bestIdx := -1
	var bestSize token.Pos = 1 << 60
	for _, blk := range g.Blocks {
		for i, s := range blk.Stmts {
			if s.Pos() <= pos && pos <= s.End() {
				// Prefer the tightest span: an If node carries its whole
				// body, but the statement inside the body is the real
				// home.
				if size := s.End() - s.Pos(); size < bestSize {
					best, bestIdx, bestSize = blk, i, size
				}
			}
		}
	}
	return best, bestIdx
}
