// Package analysis is rplint's engine: a small, standard-library-only
// static-analysis framework (go/parser + go/types, module-aware
// loading via `go list -json`) plus the analyzers that encode this
// repository's correctness invariants — stdlib purity, tolerance-based
// float comparison, cancellation-aware hot loops, registry-resolved
// fault/trace/metric names, %w-wrapped sentinels, and once-per-Server
// expvar registration. See cmd/rplint for the command-line driver and
// the README "Static analysis" section for the catalog.
package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"time"
)

// Finding is one reported violation.
type Finding struct {
	File     string `json:"file"` // module-relative, slash-separated
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the finding in rplint's canonical text form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Analyzer, f.Message)
}

// Analyzer is one named check run over every loaded package.
type Analyzer struct {
	Name string // short name, e.g. "floateq"; suppressions use rplint/<name>
	Doc  string // one-line description for -list and the README
	Flow bool   // true for flow-aware analyzers (CFG / call-summary / escape layer)
	Run  func(*Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	Cfg      *Config
	Facts    *Facts // module-wide call summaries; nil only in focused unit tests

	report func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Finding{
		File:     relFile(p.Cfg.ModuleDir, position.Filename),
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// relFile makes filename module-relative with forward slashes, for
// stable output across machines.
func relFile(moduleDir, filename string) string {
	if rel, err := filepath.Rel(moduleDir, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

// Analyzers returns the full rplint suite, in reporting order: the
// six per-file analyzers, then the five flow-aware ones built on the
// CFG and call-summary layers.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		StdlibOnly,
		FloatEq,
		CtxLoop,
		Registry,
		ErrWrap,
		MutexHeld,
		LockDiscipline,
		AtomicMix,
		GoroLeak,
		WaitGroupCheck,
		HotAlloc,
	}
}

// AnalyzerByName returns the named analyzer, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// suppressRe matches an rplint suppression comment:
//
//	//lint:ignore rplint/<analyzer> <reason>
//
// The reason is mandatory; a suppression without one is itself a
// finding. A suppression applies to findings on its own line (for
// end-of-line comments) and on the following line (for a standalone
// comment above the flagged statement).
var suppressRe = regexp.MustCompile(`^//lint:ignore rplint/([a-z]+)\s*(.*)$`)

// suppressions maps file → line → analyzer names suppressed there.
type suppressions map[string]map[int]map[string]bool

// collectSuppressions scans a package's comments. Malformed
// suppressions (missing reason, unknown analyzer) are reported as
// findings through report.
func collectSuppressions(fset *token.FileSet, pkg *Package, moduleDir string, report func(Finding)) suppressions {
	sup := make(suppressions)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := suppressRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				file := relFile(moduleDir, pos.Filename)
				name, reason := m[1], strings.TrimSpace(m[2])
				if AnalyzerByName(name) == nil {
					report(Finding{File: file, Line: pos.Line, Col: pos.Column, Analyzer: "suppress",
						Message: fmt.Sprintf("suppression names unknown analyzer rplint/%s", name)})
					continue
				}
				if reason == "" {
					report(Finding{File: file, Line: pos.Line, Col: pos.Column, Analyzer: "suppress",
						Message: fmt.Sprintf("suppression of rplint/%s needs a reason: //lint:ignore rplint/%s <why this is safe>", name, name)})
					continue
				}
				if sup[file] == nil {
					sup[file] = make(map[int]map[string]bool)
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if sup[file][line] == nil {
						sup[file][line] = make(map[string]bool)
					}
					sup[file][line][name] = true
				}
			}
		}
	}
	return sup
}

// Run executes the analyzers over every package, applies suppressions,
// and returns the surviving findings sorted by position.
func Run(pkgs []*Package, cfg *Config, analyzers []*Analyzer) []Finding {
	findings, _ := RunTimed(pkgs, cfg, analyzers)
	return findings
}

// Timing is one entry of the per-analyzer wall-clock breakdown.
type Timing struct {
	Analyzer string  `json:"analyzer"` // analyzer name, or "facts" for the shared summary pass
	Millis   float64 `json:"millis"`
}

// RunTimed is Run plus a per-analyzer wall-clock breakdown (summed
// across packages), led by a "facts" entry for the shared
// CFG/call-summary computation the flow-aware analyzers consume.
func RunTimed(pkgs []*Package, cfg *Config, analyzers []*Analyzer) ([]Finding, []Timing) {
	elapsed := make(map[string]time.Duration)

	factsStart := time.Now()
	facts := ComputeFacts(pkgs)
	elapsed["facts"] = time.Since(factsStart)

	var out []Finding
	for _, pkg := range pkgs {
		var raw []Finding
		report := func(f Finding) { raw = append(raw, f) }
		sup := collectSuppressions(cfg.Fset, pkg, cfg.ModuleDir, func(f Finding) { out = append(out, f) })
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Fset: cfg.Fset, Pkg: pkg, Cfg: cfg, Facts: facts, report: report}
			start := time.Now()
			a.Run(pass)
			elapsed[a.Name] += time.Since(start)
		}
		for _, f := range raw {
			if sup[f.File] != nil && sup[f.File][f.Line] != nil && sup[f.File][f.Line][f.Analyzer] {
				continue
			}
			out = append(out, f)
		}
	}
	out = append(out, GlobalFindings(cfg)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})

	timings := []Timing{{Analyzer: "facts", Millis: float64(elapsed["facts"]) / float64(time.Millisecond)}}
	for _, a := range analyzers {
		timings = append(timings, Timing{Analyzer: a.Name, Millis: float64(elapsed[a.Name]) / float64(time.Millisecond)})
	}
	return out, timings
}

// GlobalFindings reports the whole-repo invariants that are not tied
// to a single package: registry self-consistency and the
// registry ↔ README metric-table agreement.
func GlobalFindings(cfg *Config) []Finding {
	var out []Finding
	reg := func(msg string) {
		out = append(out, Finding{File: "internal/registry/registry.go", Line: 1, Col: 1, Analyzer: "registry", Message: msg})
	}
	for _, p := range cfg.RegistryProblems {
		reg(p)
	}
	if cfg.ReadmeMetrics != nil {
		var names []string
		for name := range cfg.Metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if !cfg.ReadmeMetrics[name] {
				reg(fmt.Sprintf("metric family %s is not documented in %s's metric table", name, cfg.ReadmePath))
			}
		}
		var doc []string
		for name := range cfg.ReadmeMetrics {
			doc = append(doc, name)
		}
		sort.Strings(doc)
		for _, name := range doc {
			if _, ok := cfg.Metrics[name]; !ok {
				out = append(out, Finding{File: cfg.ReadmePath, Line: 1, Col: 1, Analyzer: "registry",
					Message: fmt.Sprintf("%s documents metric family %s that internal/registry does not declare", cfg.ReadmePath, name)})
			}
		}
	}
	return out
}
