package analysis

import (
	"path/filepath"
	"testing"
)

// loadFixtureFacts loads one fixture package and computes module facts
// over it alone.
func loadFixtureFacts(t *testing.T, fixture string) (*Package, *Facts) {
	t.Helper()
	l := fixtureLoader(t)
	dir, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir, "fixture/"+fixture)
	if err != nil {
		t.Fatalf("loading %s fixture: %v", fixture, err)
	}
	return pkg, ComputeFacts([]*Package{pkg})
}

// factsByDisplay finds a function summary by its display name.
func factsByDisplay(t *testing.T, facts *Facts, display string) *FuncFacts {
	t.Helper()
	for _, ff := range facts.Funcs {
		if ff.Display == display {
			return ff
		}
	}
	t.Fatalf("no summary for %s; have %d summaries", display, len(facts.Funcs))
	return nil
}

func TestFactsLockSummaries(t *testing.T) {
	_, facts := loadFixtureFacts(t, "lockdiscipline")

	relock := factsByDisplay(t, facts, "lockdiscipline.relock")
	if !relock.Acquires["lockdiscipline.Outer.mu"] {
		t.Errorf("relock should directly acquire lockdiscipline.Outer.mu; got %v", SortedKeys(relock.Acquires))
	}

	// Transitive: recursive() acquires Outer.mu both directly and via
	// its call to relock — the fixpoint must fold the callee in.
	recursive := factsByDisplay(t, facts, "lockdiscipline.recursive")
	if !recursive.Acquires["lockdiscipline.Outer.mu"] {
		t.Errorf("recursive should transitively acquire lockdiscipline.Outer.mu; got %v", SortedKeys(recursive.Acquires))
	}

	release := factsByDisplay(t, facts, "lockdiscipline.release")
	if !release.Releases["lockdiscipline.Outer.mu"] {
		t.Errorf("release should be an unlock helper for lockdiscipline.Outer.mu; got %v", SortedKeys(release.Releases))
	}
}

func TestFactsCancelAndWaitGroup(t *testing.T) {
	_, facts := loadFixtureFacts(t, "goroleak")

	worker := factsByDisplay(t, facts, "goroleak.(*M).worker")
	if !worker.ObservesCancel {
		t.Error("worker selects on m.stop and should observe cancellation")
	}

	// startNamed spawns worker in a go statement; the spawn must NOT
	// leak the callee's facts back into the spawner (different stack).
	startNamed := factsByDisplay(t, facts, "goroleak.(*M).startNamed")
	if startNamed.ObservesCancel {
		t.Error("startNamed itself observes no signal; the go-spawned callee's facts must not propagate through the spawn")
	}
}

func TestFactsAtomicCatalog(t *testing.T) {
	_, facts := loadFixtureFacts(t, "atomicmix")
	for _, want := range []string{"atomicmix.Misaligned.hits", "atomicmix.Aligned.hits"} {
		if !facts.AtomicFields[want] {
			t.Errorf("atomic field catalog is missing %s; got %v", want, SortedKeys(facts.AtomicFields))
		}
	}
	if facts.AtomicFields["atomicmix.Aligned.gen"] {
		t.Error("gen is never accessed atomically and must not be catalogued")
	}
}
