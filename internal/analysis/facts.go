package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file is the call-summary half of the flow layer: one pass over
// every loaded package computes a FuncFacts record per function body,
// then a fixpoint propagates the summaries along the (monomorphic)
// call graph. The concurrency analyzers consult the result to reason
// across function boundaries — "does the function this goroutine runs
// watch a cancellation signal?", "which lock classes does this callee
// acquire?" — without whole-program SSA.

// FuncFacts summarizes one function for cross-procedural queries.
// After ComputeFacts returns, Acquires/ObservesCancel/WGDone are
// transitive over same-module calls (excluding calls launched in a go
// statement, which run on another goroutine's stack).
type FuncFacts struct {
	Display string // e.g. "jobs.(*Manager).dispatch"

	Acquires       map[string]bool // lock classes acquired, transitively
	Releases       map[string]bool // lock classes released directly (unlock helpers)
	ObservesCancel bool            // references a ctx/done-chan, transitively
	WGDone         bool            // calls (*sync.WaitGroup).Done, transitively

	calls []string // callee keys, for the fixpoint
}

// Facts is the whole-module summary set keyed by types.Func.FullName
// (stable across the duplicate type-checking of a package as both a
// target and a dependency).
type Facts struct {
	Funcs map[string]*FuncFacts

	// AtomicFields is the set of struct fields (keyed
	// "pkg.Type.field") accessed through a sync/atomic function
	// anywhere in the module. The atomicmix analyzer flags plain
	// reads/writes of these fields.
	AtomicFields map[string]bool
}

// FuncKey returns the stable cross-package key for f.
func FuncKey(f *types.Func) string {
	return f.FullName()
}

// FuncDisplay renders f the way the registry hot-path catalog and the
// analyzers' messages name functions: pkg.Func, pkg.Type.Method, or
// pkg.(*Type).Method, with pkg the package's short name.
func FuncDisplay(f *types.Func) string {
	short := "?"
	if f.Pkg() != nil {
		short = f.Pkg().Name()
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return short + "." + f.Name()
	}
	t := sig.Recv().Type()
	ptr := false
	if p, isPtr := t.(*types.Pointer); isPtr {
		ptr = true
		t = p.Elem()
	}
	name := "?"
	if n, isNamed := t.(*types.Named); isNamed {
		name = n.Obj().Name()
	}
	if ptr {
		return fmt.Sprintf("%s.(*%s).%s", short, name, f.Name())
	}
	return fmt.Sprintf("%s.%s.%s", short, name, f.Name())
}

// mutexMethod reports whether f is one of the sync.Mutex/sync.RWMutex
// methods, returning its name ("Lock", "RUnlock", ...) when it is.
func mutexMethod(f *types.Func) (string, bool) {
	if f == nil {
		return "", false
	}
	if methodOn(f, "sync", "Mutex") || methodOn(f, "sync", "RWMutex") {
		switch f.Name() {
		case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
			return f.Name(), true
		}
	}
	return "", false
}

// lockRecv returns the receiver expression of a mutex method call:
// the `m.mu` in `m.mu.Lock()`.
func lockRecv(call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return sel.X
}

// LockClass names the lock class a mutex expression belongs to:
// "pkg.Type.field" for a struct-field mutex, "pkg.var" for a
// package-level mutex variable, or "" for a local (function-scoped)
// mutex, which has no cross-function identity.
func LockClass(info *types.Info, expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		obj, ok := info.Uses[e.Sel].(*types.Var)
		if !ok || obj.Pkg() == nil {
			return ""
		}
		short := obj.Pkg().Name()
		if !obj.IsField() {
			if obj.Parent() == obj.Pkg().Scope() {
				return short + "." + obj.Name() // qualified package-level var
			}
			return ""
		}
		// Owner type from the receiver side of the selector.
		t := info.Types[e.X].Type
		if t == nil {
			return ""
		}
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return fmt.Sprintf("%s.%s.%s", short, n.Obj().Name(), obj.Name())
		}
		return ""
	case *ast.Ident:
		obj, ok := info.Uses[e].(*types.Var)
		if !ok || obj.Pkg() == nil {
			return ""
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Name() + "." + obj.Name()
		}
		return ""
	}
	return ""
}

// lockExprText renders the mutex expression for intra-function
// pairing ("m.mu" must be unlocked as "m.mu"). Only ident/selector
// chains render; anything else returns "" and the pairing check
// skips the site conservatively.
func lockExprText(expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := lockExprText(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// atomicCallField inspects a call and, when it is a sync/atomic
// function taking &x.f, returns the field object, its owner struct
// type, and whether the operation is 64-bit wide.
func atomicCallField(info *types.Info, call *ast.CallExpr) (field *types.Var, owner *types.Struct, wide bool, ok bool) {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
		return nil, nil, false, false
	}
	name := f.Name()
	switch {
	case strings.HasPrefix(name, "Add"), strings.HasPrefix(name, "Load"),
		strings.HasPrefix(name, "Store"), strings.HasPrefix(name, "Swap"),
		strings.HasPrefix(name, "CompareAndSwap"):
	default:
		return nil, nil, false, false
	}
	wide = strings.HasSuffix(name, "Int64") || strings.HasSuffix(name, "Uint64")
	if len(call.Args) == 0 {
		return nil, nil, false, false
	}
	un, isUnary := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !isUnary || un.Op.String() != "&" {
		return nil, nil, false, false
	}
	sel, isSel := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !isSel {
		return nil, nil, false, false
	}
	obj, isVar := info.Uses[sel.Sel].(*types.Var)
	if !isVar || !obj.IsField() {
		return nil, nil, false, false
	}
	t := info.Types[sel.X].Type
	if t == nil {
		return nil, nil, false, false
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	st, isStruct := t.Underlying().(*types.Struct)
	if !isStruct {
		return nil, nil, false, false
	}
	return obj, st, wide, true
}

// FieldKey names a struct field the way AtomicFields is keyed:
// "pkg.Type.field", resolved through the selector's receiver type.
func FieldKey(info *types.Info, sel *ast.SelectorExpr) string {
	obj, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() || obj.Pkg() == nil {
		return ""
	}
	t := info.Types[sel.X].Type
	if t == nil {
		return ""
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed {
		return ""
	}
	return fmt.Sprintf("%s.%s.%s", obj.Pkg().Name(), n.Obj().Name(), obj.Name())
}

// ComputeFacts builds the module-wide summary set over the loaded
// packages and runs the propagation fixpoint.
func ComputeFacts(pkgs []*Package) *Facts {
	facts := &Facts{
		Funcs:        make(map[string]*FuncFacts),
		AtomicFields: make(map[string]bool),
	}
	for _, pkg := range pkgs {
		info := pkg.Info
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				ff := &FuncFacts{
					Display:  FuncDisplay(obj),
					Acquires: make(map[string]bool),
					Releases: make(map[string]bool),
				}
				collectDirectFacts(info, fd, ff)
				facts.Funcs[FuncKey(obj)] = ff
			}
		}
		// Atomic field catalog: every &x.f handed to a sync/atomic
		// function, anywhere in the file (including init exprs).
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if field, _, _, ok := atomicCallField(info, call); ok && field.Pkg() != nil {
					if sel, isSel := ast.Unparen(ast.Unparen(call.Args[0]).(*ast.UnaryExpr).X).(*ast.SelectorExpr); isSel {
						if key := FieldKey(info, sel); key != "" {
							facts.AtomicFields[key] = true
						}
					}
				}
				return true
			})
		}
	}

	// Fixpoint: propagate acquires / cancellation observation /
	// WaitGroup.Done along same-module calls.
	for changed := true; changed; {
		changed = false
		for _, ff := range facts.Funcs {
			for _, calleeKey := range ff.calls {
				callee, ok := facts.Funcs[calleeKey]
				if !ok {
					continue
				}
				for class := range callee.Acquires {
					if !ff.Acquires[class] {
						ff.Acquires[class] = true
						changed = true
					}
				}
				if callee.ObservesCancel && !ff.ObservesCancel {
					ff.ObservesCancel = true
					changed = true
				}
				if callee.WGDone && !ff.WGDone {
					ff.WGDone = true
					changed = true
				}
			}
		}
	}
	return facts
}

// collectDirectFacts fills ff with fd's own (non-transitive) facts:
// lock classes acquired/released, cancellation references, WaitGroup
// Done calls, and the call list for the fixpoint. Calls inside go
// statements are excluded from the call list — they run on a
// different goroutine's stack, so neither lock acquisition nor
// cancellation observation transfers to the spawner.
func collectDirectFacts(info *types.Info, fd *ast.FuncDecl, ff *FuncFacts) {
	ff.ObservesCancel = hasCancelSignal(info, fd)
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// Record the spawn's function literal body? No: its locks
			// and ctx references belong to the goroutine, not to fd.
			return false
		case *ast.CallExpr:
			f := calleeFunc(info, n)
			if name, ok := mutexMethod(f); ok {
				if class := LockClass(info, lockRecv(n)); class != "" {
					switch name {
					case "Lock", "RLock", "TryLock", "TryRLock":
						ff.Acquires[class] = true
					case "Unlock", "RUnlock":
						ff.Releases[class] = true
					}
				}
				return true
			}
			if f != nil {
				if methodOn(f, "sync", "WaitGroup") && f.Name() == "Done" {
					ff.WGDone = true
				}
				ff.calls = append(ff.calls, FuncKey(f))
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// SortedKeys is a small test/debug helper: the keys of a string-keyed
// set in stable order.
func SortedKeys[M ~map[string]bool](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
