package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// calleeFunc resolves the *types.Func a call dispatches to, for both
// package-level functions (pkg.F, F) and methods (x.M). Returns nil
// for builtins, conversions, and indirect calls through variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isBuiltinCall reports whether call invokes the named builtin
// (make, new, append, ...).
func isBuiltinCall(info *types.Info, call *ast.CallExpr, names ...string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	if !ok {
		return false
	}
	for _, n := range names {
		if b.Name() == n {
			return true
		}
	}
	return false
}

// constString returns expr's compile-time string value, if it has one
// (covers both literals and named constants, through the type-checker's
// constant folding).
func constString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isFloaty reports whether t's underlying type is a floating-point or
// complex basic type.
func isFloaty(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isDoneChan reports whether t is a (receive-only) channel of struct{}
// — the shape of ctx.Done() and the pipeline's cached done channels.
func isDoneChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok || ch.Dir() == types.SendOnly {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// methodOn reports whether f is a method whose receiver's named type
// is pkgPath.typeName (through pointers).
func methodOn(f *types.Func, pkgPath, typeName string) bool {
	if f == nil {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isPkgFunc reports whether f is the package-level function
// pkgPath.name (not a method).
func isPkgFunc(f *types.Func, pkgPath, name string) bool {
	if f == nil || f.Name() != name || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// pkgLevelVar returns the package-level *types.Var an identifier or
// selector refers to, or nil.
func pkgLevelVar(info *types.Info, expr ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	return v
}
