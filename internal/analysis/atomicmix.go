package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicMix enforces the sync/atomic all-or-nothing rule: once any
// code path touches a struct field through sync/atomic, every access
// to that field must go through sync/atomic — a plain read races with
// the atomic writers, and a plain write tears under them. The field
// catalog is module-wide (facts layer), so a plain access in one
// package is caught even when the atomic access lives in another.
//
// It also checks the 64-bit alignment contract: atomic.*Int64/*Uint64
// on a struct field is only safe if the field is 64-bit aligned, which
// the Go memory model guarantees only for the first word — on 32-bit
// targets a field at an odd 4-byte offset panics at runtime. The check
// computes offsets with 32-bit (GOARCH=386) sizes, where the hazard
// actually manifests.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "fields accessed via sync/atomic are never read or written plainly; 64-bit atomics are alignment-safe",
	Flow: true,
	Run:  runAtomicMix,
}

// sizes32 computes struct layout under the most restrictive supported
// target (32-bit x86, 4-byte word alignment) for the 64-bit atomic
// alignment check.
var sizes32 = types.SizesFor("gc", "386")

func runAtomicMix(p *Pass) {
	if p.Facts == nil || len(p.Facts.AtomicFields) == 0 {
		return
	}
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		checkAtomicFile(p, info, f)
	}
}

func checkAtomicFile(p *Pass, info *types.Info, file *ast.File) {
	// Walk with an explicit parent stack so a selector inside
	// `atomic.AddUint64(&x.f, 1)` can be recognized as the atomic
	// access itself rather than a plain one.
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.CallExpr:
			if field, owner, wide, ok := atomicCallField(info, n); ok && wide {
				name := field.Name()
				if un, isUnary := ast.Unparen(n.Args[0]).(*ast.UnaryExpr); isUnary {
					if sel, isSel := ast.Unparen(un.X).(*ast.SelectorExpr); isSel {
						if key := FieldKey(info, sel); key != "" {
							name = key
						}
					}
				}
				checkAtomicAlignment(p, n, field, owner, name)
			}
		case *ast.SelectorExpr:
			key := FieldKey(info, n)
			if key == "" || !p.Facts.AtomicFields[key] {
				return true
			}
			if insideAtomicArg(info, stack) {
				return true
			}
			p.Reportf(n.Sel.Pos(), "plain access to %s, which is accessed via sync/atomic elsewhere; use the matching atomic.Load/Store/Add call (plain reads race, plain writes tear)", key)
		}
		return true
	})
}

// insideAtomicArg reports whether the innermost selector on the stack
// sits under an `&...` argument of a sync/atomic call — i.e. it IS the
// atomic access, not a plain one. Address-taking for other purposes
// (e.g. passing &x.f to a helper) is still flagged: that pointer can
// be dereferenced plainly downstream, which is exactly the mixing the
// analyzer exists to stop.
func insideAtomicArg(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		call, ok := stack[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		if _, _, _, ok := atomicCallField(info, call); !ok {
			f := calleeFunc(info, call)
			if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
				continue
			}
		}
		// Inside any argument of a sync/atomic call: the access is the
		// atomic operation (covers &x.f and the value operands).
		return true
	}
	return false
}

// checkAtomicAlignment reports 64-bit atomic operations on fields that
// a 32-bit target would place at a non-8-byte-aligned offset.
func checkAtomicAlignment(p *Pass, call *ast.CallExpr, field *types.Var, owner *types.Struct, name string) {
	if sizes32 == nil {
		return
	}
	fields := make([]*types.Var, owner.NumFields())
	idx := -1
	for i := 0; i < owner.NumFields(); i++ {
		fields[i] = owner.Field(i)
		if fields[i] == field || (fields[i].Name() == field.Name() && fields[i].Pos() == field.Pos()) {
			idx = i
		}
	}
	if idx < 0 {
		return
	}
	defer func() { recover() }() // Offsetsof panics on exotic types; treat as unknown
	offsets := sizes32.Offsetsof(fields)
	if offsets[idx]%8 != 0 {
		p.Reportf(call.Pos(), "64-bit atomic on %s: field offset %d is not 8-byte aligned on 32-bit targets; move it to the front of the struct or pad (sync/atomic alignment contract)", name, offsets[idx])
	}
}
