package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// HotAlloc holds the registry hot-path catalog — the functions whose
// allocation counts are pinned by AllocsPerRun benchmarks (trace/obs
// instrumentation that sits on every request, faults.Check on every
// fault point) — to allocation discipline at the AST level:
//
//   - no fmt calls (every fmt.Sprintf boxes its operands),
//   - no append through a base that was not preallocated with an
//     explicit capacity (struct-field bases are exempt: the amortized
//     append-to-reused-buffer pattern is the point of a hot buffer),
//   - no conversions that box a concrete value into an interface,
//   - no capturing closures handed away (a closure that captures
//     locals and escapes forces those locals to the heap).
//
// When the run carries compiler escape facts (rplint -facts), every
// "escapes to heap"/"moved to heap" verdict inside a hot function is
// reported too — the compiler's ground truth cross-checking the AST
// heuristics, so a regression the heuristics miss still fails the
// lint gate before the benchmark pins catch it at nightly speed.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "registry hot-path functions stay allocation-free: no fmt, unpreallocated append, interface boxing, or escaping captures",
	Flow: true,
	Run:  runHotAlloc,
}

func runHotAlloc(p *Pass) {
	if len(p.Cfg.HotPaths) == 0 {
		return
	}
	info := p.Pkg.Info
	declared := make(map[string]bool)
	short := p.Pkg.Types.Name()
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			display := FuncDisplay(obj)
			declared[display] = true
			if !p.Cfg.HotPaths[display] || fd.Body == nil {
				continue
			}
			checkHotBody(p, info, display, fd)
			checkHotEscapes(p, display, fd)
		}
	}
	// Catalog coverage: a hot-path entry naming this package must
	// resolve to a declared function, or the catalog has drifted from
	// the code and the pin it stands for is unenforced.
	for _, entry := range SortedKeys(p.Cfg.HotPaths) {
		if !hotPathInPackage(entry, short) || declared[entry] {
			continue
		}
		pos := token.NoPos
		if len(p.Pkg.Files) > 0 {
			pos = p.Pkg.Files[0].Pos()
		}
		p.Reportf(pos, "registry hot-path entry %q does not resolve to a function in package %s; fix the catalog or restore the function", entry, short)
	}
}

// hotPathInPackage reports whether a catalog entry like
// "trace.(*Trace).StartStage" names a function in the package with the
// given short name.
func hotPathInPackage(entry, short string) bool {
	return len(entry) > len(short)+1 && entry[:len(short)+1] == short+"."
}

// checkHotBody runs the AST allocation checks over one hot function.
func checkHotBody(p *Pass, info *types.Info, display string, fd *ast.FuncDecl) {
	prealloc := preallocatedSlices(info, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			f := calleeFunc(info, n)
			if f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
				p.Reportf(n.Pos(), "%s is a registry hot path (AllocsPerRun-pinned) but calls fmt.%s, which allocates for every operand; format outside the hot path or build the string manually", display, f.Name())
				return false
			}
			if isBuiltinCall(info, n, "append") {
				checkHotAppend(p, info, display, n, prealloc)
			}
			checkBoxedArgs(p, info, display, n)
		case *ast.FuncLit:
			if closureEscapes(p, info, fd, n) && capturesLocals(info, fd, n) {
				p.Reportf(n.Pos(), "%s is a registry hot path but hands away a closure that captures locals, forcing them to the heap; pass the values as arguments or hoist the closure to a method", display)
			}
			return false // the literal's own body is not the hot path's frame
		}
		return true
	})
}

// preallocatedSlices collects local slice variables created with an
// explicit capacity (make with three arguments) — append through them
// stays in the preallocated backing array as long as the benchmark's
// working set fits.
func preallocatedSlices(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltinCall(info, call, "make") || len(call.Args) != 3 {
			return
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i := range n.Rhs {
				if i < len(n.Lhs) {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i := range n.Values {
				if i < len(n.Names) {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// checkHotAppend flags append calls whose base is neither a
// struct-field buffer nor a capacity-preallocated local.
func checkHotAppend(p *Pass, info *types.Info, display string, call *ast.CallExpr, prealloc map[types.Object]bool) {
	if len(call.Args) == 0 {
		return
	}
	switch base := ast.Unparen(call.Args[0]).(type) {
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[base.Sel].(*types.Var); ok && obj.IsField() {
			return // reused struct-field buffer: the intended pattern
		}
	case *ast.Ident:
		if obj := info.Uses[base]; obj != nil && prealloc[obj] {
			return
		}
	}
	p.Reportf(call.Pos(), "%s is a registry hot path but appends without preallocation; size the slice with make(..., 0, n) or append into a reused struct-field buffer", display)
}

// checkBoxedArgs flags arguments that convert a concrete value into an
// interface parameter — each such conversion allocates unless the
// compiler can prove otherwise, and hot paths must not bet on that.
func checkBoxedArgs(p *Pass, info *types.Info, display string, call *ast.CallExpr) {
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if s, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
				param = s.Elem()
			}
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		}
		if param == nil || !types.IsInterface(param.Underlying()) {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || boxFree(at) {
			continue
		}
		if tv, ok := info.Types[arg]; ok && tv.IsNil() {
			continue
		}
		p.Reportf(arg.Pos(), "%s is a registry hot path but boxes a %s into an interface argument, which allocates; keep hot-path signatures concrete", display, types.TypeString(at, func(p *types.Package) string { return p.Name() }))
	}
}

// boxFree reports whether storing a value of type t in an interface
// needs no allocation: pointer-shaped types share their word directly.
func boxFree(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// closureEscapes reports whether lit is handed away — passed as a call
// argument (except immediately invoked), assigned, returned, deferred,
// or spawned.
func closureEscapes(p *Pass, info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) bool {
	escapes := false
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if n != ast.Node(lit) || len(stack) < 2 {
			return true
		}
		switch parent := stack[len(stack)-2].(type) {
		case *ast.CallExpr:
			if ast.Unparen(parent.Fun) == ast.Node(lit) {
				return true // immediately invoked: runs in this frame
			}
			escapes = true
		case *ast.AssignStmt, *ast.ReturnStmt, *ast.GoStmt, *ast.DeferStmt, *ast.KeyValueExpr, *ast.CompositeLit:
			escapes = true
		}
		return true
	})
	return escapes
}

// capturesLocals reports whether lit references variables declared in
// the enclosing function but outside the literal itself.
func capturesLocals(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captures {
			return !captures
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || obj.Pkg() == nil {
			return true
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return true // package-level: no capture
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // the literal's own declaration
		}
		if obj.Pos() >= fd.Pos() && obj.Pos() < fd.End() {
			captures = true
			return false
		}
		return true
	})
	return captures
}

// checkHotEscapes reports the compiler's heap verdicts inside a hot
// function's source span when the run has escape facts loaded.
func checkHotEscapes(p *Pass, display string, fd *ast.FuncDecl) {
	if p.Cfg.Escape == nil {
		return
	}
	start := p.Fset.Position(fd.Pos())
	end := p.Fset.Position(fd.End())
	rel := start.Filename
	if p.Cfg.ModuleDir != "" {
		if r, err := filepath.Rel(p.Cfg.ModuleDir, start.Filename); err == nil {
			rel = filepath.ToSlash(r)
		}
	}
	for line := start.Line; line <= end.Line; line++ {
		for _, note := range p.Cfg.Escape[fmt.Sprintf("%s:%d", rel, line)] {
			pos := p.Fset.File(fd.Pos()).LineStart(line)
			p.Reportf(pos, "%s is a registry hot path but the compiler reports %q at line %d; eliminate the allocation or restructure so it stays on the stack", display, note, line)
		}
	}
}
