// Package dep is a stand-in third-party dependency for the
// stdlibonly fixture; it resolves through the test loader's GOPATH so
// the fixture type-checks, while living outside GOROOT and the module.
package dep

// Answer is the only export; the fixture just needs something to use.
const Answer = 42
