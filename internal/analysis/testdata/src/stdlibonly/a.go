// Fixture: stdlibonly must flag the third-party import and accept the
// standard-library and module-internal ones.
package stdlibonly

import (
	"fmt"

	"github.com/fake/dep"

	"robustperiod/internal/registry"
)

func use() {
	fmt.Println(dep.Answer, registry.FaultCoreLevel)
}
