// Fixture: suppression handling. A well-formed //lint:ignore silences
// the finding on its own or the following line; a missing reason or an
// unknown analyzer name is itself a finding and silences nothing.
package suppress

func cmp(a, b float64) bool {
	//lint:ignore rplint/floateq fixture: exactness is the point here
	return a == b // silenced by the line above
}

func cmpSameLine(a, b float64) bool {
	return a != b //lint:ignore rplint/floateq fixture: same-line form
}

func missingReason(a, b float64) bool {
	//lint:ignore rplint/floateq
	return a == b // want: floateq survives, and the bare suppression is flagged
}

func unknownAnalyzer(a, b float64) bool {
	//lint:ignore rplint/nosuch this analyzer does not exist
	return a == b // want: floateq survives, and the suppression is flagged
}
