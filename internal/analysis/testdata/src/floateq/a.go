// Fixture: floateq flags ==/!= on computed floats, and exempts
// constant-zero guards and fully constant-folded comparisons.
package floateq

const tol = 1e-9

func cmp(a, b float64) bool {
	if a == b { // want: computed == computed
		return true
	}
	if a != b+1 { // want: computed != computed
		return false
	}
	if a == 0 { // exempt: exact zero guard
		return false
	}
	if b != 0.0 { // exempt: exact zero guard
		return false
	}
	return tol == 1e-9 // exempt: constant-folded
}

func cmp32(a float32, c complex128) bool {
	return a == 1.5 || c == 2i // want twice: float32 and complex operands
}

func ints(a, b int) bool {
	return a == b // exempt: not floating point
}
