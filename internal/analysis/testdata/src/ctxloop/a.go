// Fixture: ctxloop flags allocating loops that ignore an in-scope
// cancellation signal, and accepts direct polls, helper polls, and
// functions with no signal to poll.
package ctxloop

import "context"

func bad(ctx context.Context, n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ { // want: append without poll, ctx in scope
		out = append(out, i)
	}
	return out
}

func badHeavyCall(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ { // want: calls a loop-containing function
		total += noSignal(i)
	}
	_ = ctx
	return total
}

func good(ctx context.Context, n int) ([]int, error) {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out = append(out, i)
	}
	return out, nil
}

func goodHelper(done <-chan struct{}, n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if cancelled(done) {
			return out
		}
		out = append(out, i)
	}
	return out
}

func noSignal(n int) int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ { // exempt: nothing in scope to poll
		out = append(out, i)
	}
	return len(out)
}

func lightLoop(ctx context.Context, xs []int) int {
	total := 0
	for _, x := range xs { // exempt: no allocation, no heavy call
		total += x
	}
	_ = ctx
	return total
}

func cancelled(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}
