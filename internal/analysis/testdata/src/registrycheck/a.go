// Fixture: the registry analyzer flags unregistered or computed
// fault-point, trace-stage, and metric names, and accepts registry
// constants and forwarded (non-constant) metric names.
package registrycheck

import (
	"robustperiod/internal/faults"
	"robustperiod/internal/obs"
	"robustperiod/internal/registry"
	"robustperiod/internal/trace"
)

func use(tr *trace.Trace, p *obs.PromWriter, name string) {
	_ = faults.Check("no/such_point")         // want: unregistered
	_ = faults.Check(name)                    // want: computed
	_ = faults.Check(registry.FaultCoreLevel) // clean

	sv := tr.StartStage("bogus_stage") // want: unregistered
	sv.End()
	sv = tr.StartStage(registry.StageMODWT) // clean
	sv.End()
	tr.Count("also_bogus", "key", 1)                  // want: unregistered
	tr.Count(registry.StageRanking, "key", 1)         // clean
	tr.CountBool("bogus_too", true, "a", "b")         // want: unregistered
	tr.CountBool(registry.StageMODWT, true, "a", "b") // clean

	p.Family("rp_nope_total", "Nope.", "counter")                 // want: unregistered family
	p.Family(registry.MetricCacheEntries, "Wrong help.", "gauge") // want: help drift
	p.Family(registry.MetricCacheEntries,
		"Number of entries currently cached.", "counter") // want: type drift
	p.Sample("rp_also_nope", nil, 1)                     // want: unregistered rp_ reference
	p.Sample(registry.MetricCacheEntries, nil, 1)        // clean
	p.Sample(name, nil, 1)                               // clean: forwarded name
	_ = obs.FindFamily(nil, "rp_missing_family_total")   // want: unregistered rp_ reference
	_ = obs.FindFamily(nil, registry.MetricCacheEntries) // clean

	p.HistogramExemplars("rp_ghost_seconds", nil, nil, nil, 0, nil)             // want: unregistered family
	p.HistogramExemplars(registry.MetricCacheEntries, nil, nil, nil, 0, nil)    // want: registered but not exemplar-bearing
	p.HistogramExemplars(registry.MetricRequestDuration, nil, nil, nil, 0, nil) // clean: Exemplars: true
	p.HistogramExemplars(name, nil, nil, nil, 0, nil)                           // clean: forwarded name
}
