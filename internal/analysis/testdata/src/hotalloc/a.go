// Fixture: hotalloc holds the functions in the (fixture) hot-path
// catalog to allocation discipline; everything outside the catalog is
// exempt. The catalog also names a function that does not exist, to
// exercise the drift check.
package hotalloc

import "fmt"

type Buf struct {
	spans []int
}

func HotFmt(x int) string {
	return fmt.Sprintf("%d", x) // want: fmt allocates per operand
}

func HotAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want: grows without preallocation
	}
	return out
}

func HotPrealloc(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x) // explicit capacity: no finding
	}
	return out
}

func (b *Buf) Record(x int) {
	b.spans = append(b.spans, x) // reused field buffer: no finding
}

func HotBox(x int) {
	sink(x) // want: boxes the int into an interface
}

func HotNoBox(p *Buf) {
	sink(p) // pointer-shaped: no finding
}

func sink(v any) { _ = v }

func HotClosure(x int) func() int {
	f := func() int { return x } // want: escaping capture pins x to the heap
	return f
}

func HotInvoked(x int) int {
	return func() int { return x }() // immediately invoked: no finding
}

func Cold(x int) string {
	return fmt.Sprintf("%d", x) // not a hot path: no finding
}
