// Fixture: lockdiscipline proves locks are released on every path,
// kinds match, the acquisition order follows the (fixture) catalog,
// and catalogued packages keep every mutex ranked.
package lockdiscipline

import "sync"

// Outer ranks before Inner in the fixture lock-order catalog.
type Outer struct{ mu sync.Mutex }

// Inner ranks after Outer.
type Inner struct{ mu sync.RWMutex }

// Stray's mutex is deliberately missing from the catalog. // want: coverage
type Stray struct{ mu sync.Mutex }

var globalMu sync.Mutex // ranked in the fixture catalog: no finding

func deferred(o *Outer) {
	o.mu.Lock()
	defer o.mu.Unlock()
}

func perBranch(o *Outer, b bool) {
	o.mu.Lock()
	if b {
		o.mu.Unlock()
		return
	}
	o.mu.Unlock()
}

func leaky(o *Outer, b bool) {
	o.mu.Lock() // want: not released on the early-return path
	if b {
		return
	}
	o.mu.Unlock()
}

func kindMismatch(i *Inner) {
	i.mu.RLock() // want: RLock released with Unlock
	i.mu.Unlock()
}

func nested(o *Outer, i *Inner) {
	o.mu.Lock()
	defer o.mu.Unlock()
	i.mu.RLock() // catalog order Outer -> Inner: no finding
	defer i.mu.RUnlock()
}

func inverted(o *Outer, i *Inner) {
	i.mu.RLock()
	defer i.mu.RUnlock()
	o.mu.Lock() // want: Inner held while acquiring Outer
	defer o.mu.Unlock()
}

func recursive(o *Outer) {
	o.mu.Lock()
	defer o.mu.Unlock()
	relock(o) // want: callee re-acquires the held class
}

func relock(o *Outer) {
	o.mu.Lock()
	defer o.mu.Unlock()
}

func handoff(o *Outer) {
	o.mu.Lock()
	release(o) // release via the callee's summary: no finding
}

func release(o *Outer) {
	o.mu.Unlock()
}

func global(o *Outer) {
	globalMu.Lock()
	defer globalMu.Unlock()
	o.mu.Lock() // want: globalMu ranks after Outer
	defer o.mu.Unlock()
}
