// Fixture: type-parameterized code type-checks and runs through every
// analyzer — flow-aware ones included — without findings or panics.
package generics

import (
	"context"
	"sync"
)

// Cache is a generic guarded map; its mutex is ranked in the fixture
// lock-order catalog.
type Cache[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]V
}

func NewCache[K comparable, V any]() *Cache[K, V] {
	return &Cache[K, V]{m: make(map[K]V)}
}

func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[k]
	return v, ok
}

func (c *Cache[K, V]) Put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[k] = v
}

// Map exercises generic free functions with closures and appends.
func Map[T, U any](xs []T, f func(T) U) []U {
	out := make([]U, 0, len(xs))
	for _, x := range xs {
		out = append(out, f(x))
	}
	return out
}

// Watch exercises goroutine analysis over a generic function: the
// spawn is ctx-tied, so goroleak stays quiet.
func Watch[T any](ctx context.Context, ch chan T) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-ch:
			}
		}
	}()
}

// Reduce exercises generic instantiation calls inside the package.
func Reduce[T any](xs []T, acc T, f func(T, T) T) T {
	for _, x := range xs {
		acc = f(acc, x)
	}
	return acc
}

var _ = Map[int, int]
