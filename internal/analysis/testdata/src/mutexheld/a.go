// Fixture: mutexheld flags global expvar registration on code paths
// that can run more than once, and accepts init-time and package-level
// registration.
package mutexheld

import "expvar"

var hits = expvar.NewInt("fixture_hits") // exempt: package-level, runs once

func init() {
	expvar.Publish("fixture_info", hits) // exempt: init runs once
}

type Server struct {
	requests *expvar.Int
}

func NewServer() *Server {
	return &Server{
		requests: expvar.NewInt("fixture_requests"), // want: second NewServer panics
	}
}

func (s *Server) register() {
	expvar.Publish("fixture_server", s.requests) // want: second call panics
}

func perInstance() *expvar.Map {
	return new(expvar.Map).Init() // clean: no global registration
}
