// Fixture: errwrap flags == / != against Err* sentinels and %v/%s
// formatting of error values, and accepts errors.Is and %w.
package errwrap

import (
	"errors"
	"fmt"
)

var ErrBad = errors.New("bad")
var notSentinel = errors.New("local convention, not an Err* name")

func classify(err error) error {
	if err == ErrBad { // want: sentinel ==
		return nil
	}
	if ErrBad != err { // want: sentinel on the left
		return nil
	}
	if errors.Is(err, ErrBad) { // clean
		return nil
	}
	if err == notSentinel { // exempt: not an Err* name
		return nil
	}
	return nil
}

func wrap(err error, lineNo int) error {
	if err != nil {
		return fmt.Errorf("line %d: %v", lineNo, err) // want: %v on error
	}
	return fmt.Errorf("%s while parsing", err) // want: %s on error
}

func wrapOK(err error) error {
	wrapped := fmt.Errorf("context: %w", err)                 // clean
	return fmt.Errorf("%-8s %v then %w", "pad", 1.5, wrapped) // clean: %v arg is not an error
}
