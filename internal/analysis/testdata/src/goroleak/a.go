// Fixture: goroleak requires spawned goroutines in service packages to
// carry a visible lifecycle tie, and flags the time-package leaks.
package goroleak

import (
	"context"
	"sync"
	"time"
)

type M struct {
	stop chan struct{}
	wg   sync.WaitGroup
}

func (m *M) worker() {
	for {
		select {
		case <-m.stop:
			return
		default:
		}
	}
}

func (m *M) startNamed() {
	m.wg.Add(1)
	go m.worker() // callee watches m.stop (summary): no finding
}

func startCtx(ctx context.Context) {
	go func() { // body watches ctx.Done: no finding
		<-ctx.Done()
	}()
}

func (m *M) startAccounted() {
	m.wg.Add(1)
	go func() { // body settles the WaitGroup: no finding
		defer m.wg.Done()
	}()
}

func untied() {
	go func() { // want: nothing ties this goroutine down
		for {
			time.Sleep(time.Millisecond)
		}
	}()
}

func afterInLoop(ch chan int) {
	for range ch {
		select {
		case <-time.After(time.Second): // want: unstoppable timer per iteration
		default:
		}
	}
}

func tickLeak() <-chan time.Time {
	return time.Tick(time.Second) // want: no Stop handle
}

func tickerLeak() {
	t := time.NewTicker(time.Second) // want: never stopped here
	<-t.C
}

func tickerStopped() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	<-t.C
}

type holder struct{ t *time.Ticker }

func tickerHandedOff(h *holder) {
	t := time.NewTicker(time.Second)
	h.t = t // stored away: Stop lives with the holder, no finding
}
