// Fixture: atomicmix flags plain accesses to fields that are accessed
// via sync/atomic anywhere, and 64-bit atomics on fields a 32-bit
// target would misalign.
package atomicmix

import "sync/atomic"

// Misaligned places its 64-bit counter at offset 4 on 32-bit targets.
type Misaligned struct {
	gen  uint32
	hits uint64
}

// Aligned keeps the 64-bit counter first, as the sync/atomic contract
// requires.
type Aligned struct {
	hits uint64
	gen  uint32
}

func (m *Misaligned) Inc() {
	atomic.AddUint64(&m.hits, 1) // want: offset 4 is not 8-byte aligned
}

func (a *Aligned) Inc() {
	atomic.AddUint64(&a.hits, 1) // aligned and atomic: no finding
}

func (a *Aligned) Load() uint64 {
	return atomic.LoadUint64(&a.hits) // atomic read: no finding
}

func (a *Aligned) Mixed() uint64 {
	return a.hits // want: plain read of an atomic field
}

func (a *Aligned) Reset() {
	a.hits = 0 // want: plain write tears under concurrent atomics
}

func (a *Aligned) Gen() uint32 {
	return a.gen // never atomic: no finding
}
