// Fixture: waitgroup flags Add inside the spawned goroutine, Add after
// Wait, and WaitGroup copies.
package waitgroup

import "sync"

func addInside() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want: races with the spawner's Wait
		defer wg.Done()
	}()
	wg.Wait()
}

func addBefore() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

func addAfterWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { wg.Done() }()
	wg.Wait()
	wg.Add(1) // want: reuse before the previous Wait settles
	go func() { wg.Done() }()
	wg.Wait()
}

func byValueParam(wg sync.WaitGroup) { // want: callee gets a copy
	wg.Done()
}

func byPointerParam(wg *sync.WaitGroup) { // pointer: no finding
	wg.Done()
}

func copies() {
	var wg sync.WaitGroup
	wg2 := wg // want: splits the counter
	_ = wg2
	byValueParam(wg) // want: argument copies the counter
	byPointerParam(&wg)
}
