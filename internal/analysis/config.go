package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"

	"robustperiod/internal/registry"
)

// Config carries the repo-level knowledge the analyzers check against:
// the registry's canonical name sets, the README's documented metric
// families, and which packages the cancellation contract applies to.
type Config struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string
	GoRoot     string

	FaultPoints map[string]bool
	TraceStages map[string]bool
	Metrics     map[string]registry.Metric

	ReadmePath    string          // module-relative, e.g. "README.md"
	ReadmeMetrics map[string]bool // rp_* tokens mentioned in the README; nil disables the doc checks

	// CtxLoopPackages are the import paths whose allocating loops must
	// poll cancellation (the PR 1/3 contract: per-frequency and
	// per-iteration hot loops of the detection pipeline).
	CtxLoopPackages map[string]bool

	RegistryProblems []string // registry.Validate() output, reported once
}

// metricTokenRe extracts metric family mentions from the README.
var metricTokenRe = regexp.MustCompile(`rp_[a-z0-9_]+`)

// RepoConfig builds the standard configuration for this repository
// from a finished Loader: registry constants via the compiled-in
// catalog, documented metrics by scanning README.md.
func RepoConfig(l *Loader) (*Config, error) {
	cfg := &Config{
		Fset:             l.Fset,
		ModulePath:       l.ModulePath,
		ModuleDir:        l.ModuleDir,
		GoRoot:           l.GoRoot,
		FaultPoints:      stringSet(registry.FaultPoints()),
		TraceStages:      stringSet(registry.TraceStages()),
		Metrics:          make(map[string]registry.Metric),
		ReadmePath:       "README.md",
		CtxLoopPackages:  make(map[string]bool),
		RegistryProblems: registry.Validate(),
	}
	for _, m := range registry.Metrics() {
		cfg.Metrics[m.Name] = m
	}
	for _, suffix := range []string{
		"/internal/spectrum",
		"/internal/filter/hp",
		"/internal/wavelet",
		"/internal/core",
		"/internal/detect",
	} {
		cfg.CtxLoopPackages[l.ModulePath+suffix] = true
	}
	readme, err := os.ReadFile(filepath.Join(l.ModuleDir, cfg.ReadmePath))
	if err != nil {
		return nil, err
	}
	cfg.ReadmeMetrics = make(map[string]bool)
	for _, tok := range metricTokenRe.FindAllString(string(readme), -1) {
		cfg.ReadmeMetrics[tok] = true
	}
	return cfg, nil
}

func stringSet(names []string) map[string]bool {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return set
}
