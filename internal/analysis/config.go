package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"

	"robustperiod/internal/registry"
)

// Config carries the repo-level knowledge the analyzers check against:
// the registry's canonical name sets, the README's documented metric
// families, and which packages the cancellation contract applies to.
type Config struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string
	GoRoot     string

	FaultPoints map[string]bool
	TraceStages map[string]bool
	Metrics     map[string]registry.Metric

	ReadmePath    string          // module-relative, e.g. "README.md"
	ReadmeMetrics map[string]bool // rp_* tokens mentioned in the README; nil disables the doc checks

	// CtxLoopPackages are the import paths whose allocating loops must
	// poll cancellation (the PR 1/3 contract: per-frequency and
	// per-iteration hot loops of the detection pipeline).
	CtxLoopPackages map[string]bool

	// LockOrder is the registry lock-order catalog: lock class →
	// acquisition rank, outermost first. Acquiring a class while
	// holding an equal-or-later-ranked class is a lockdiscipline
	// finding.
	LockOrder map[string]int

	// LockCatalogPackages are the import paths whose mutexes must all
	// appear in LockOrder (the long-lived shared-state layers:
	// jobs, wal, serve, obs, trace, slo).
	LockCatalogPackages map[string]bool

	// GoroutinePackages are the import paths where every spawned
	// goroutine must be tied to a context, done channel, or WaitGroup
	// visible at the spawn site (goroleak).
	GoroutinePackages map[string]bool

	// HotPaths is the registry hot-path catalog: FuncDisplay-form
	// function names whose bodies the hotalloc analyzer holds to
	// allocation discipline.
	HotPaths map[string]bool

	// Escape carries compiler escape-analysis notes ("file:line" →
	// messages, module-relative paths) when the run has them (rplint
	// -facts); nil runs hotalloc on its AST checks alone.
	Escape map[string][]string

	RegistryProblems []string // registry.Validate() output, reported once
}

// metricTokenRe extracts metric family mentions from the README.
var metricTokenRe = regexp.MustCompile(`rp_[a-z0-9_]+`)

// RepoConfig builds the standard configuration for this repository
// from a finished Loader: registry constants via the compiled-in
// catalog, documented metrics by scanning README.md.
func RepoConfig(l *Loader) (*Config, error) {
	cfg := &Config{
		Fset:             l.Fset,
		ModulePath:       l.ModulePath,
		ModuleDir:        l.ModuleDir,
		GoRoot:           l.GoRoot,
		FaultPoints:      stringSet(registry.FaultPoints()),
		TraceStages:      stringSet(registry.TraceStages()),
		Metrics:          make(map[string]registry.Metric),
		ReadmePath:       "README.md",
		CtxLoopPackages:  make(map[string]bool),
		RegistryProblems: registry.Validate(),
	}
	for _, m := range registry.Metrics() {
		cfg.Metrics[m.Name] = m
	}
	for _, suffix := range []string{
		"/internal/spectrum",
		"/internal/filter/hp",
		"/internal/wavelet",
		"/internal/core",
		"/internal/detect",
	} {
		cfg.CtxLoopPackages[l.ModulePath+suffix] = true
	}
	cfg.LockOrder = make(map[string]int)
	for i, class := range registry.LockOrder() {
		cfg.LockOrder[class] = i
	}
	cfg.LockCatalogPackages = make(map[string]bool)
	for _, suffix := range []string{
		"/internal/jobs",
		"/internal/wal",
		"/internal/serve",
		"/internal/obs",
		"/internal/trace",
		"/internal/slo",
	} {
		cfg.LockCatalogPackages[l.ModulePath+suffix] = true
	}
	cfg.GoroutinePackages = make(map[string]bool)
	for _, suffix := range []string{
		"/internal/jobs",
		"/internal/wal",
		"/internal/serve",
		"/internal/slo",
	} {
		cfg.GoroutinePackages[l.ModulePath+suffix] = true
	}
	cfg.HotPaths = stringSet(registry.HotPaths())
	readme, err := os.ReadFile(filepath.Join(l.ModuleDir, cfg.ReadmePath))
	if err != nil {
		return nil, err
	}
	cfg.ReadmeMetrics = make(map[string]bool)
	for _, tok := range metricTokenRe.FindAllString(string(readme), -1) {
		cfg.ReadmeMetrics[tok] = true
	}
	return cfg, nil
}

func stringSet(names []string) map[string]bool {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return set
}
