package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"robustperiod/internal/registry"
)

var update = flag.Bool("update", false, "rewrite the fixtures' expect.txt golden files")

// fixtureLoader builds a Loader rooted at the real module (so fixture
// imports of robustperiod/... resolve against the live packages) with
// an import override into testdata, giving the stdlibonly fixture a
// resolvable third-party import that is neither stdlib nor module.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	moduleDir, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	modulePath, err := modulePathOf(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	goroot, err := goEnv(moduleDir, "GOROOT")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(moduleDir, modulePath, goroot)
	depDir, err := filepath.Abs(filepath.Join("testdata", "gopath", "src", "github.com", "fake", "dep"))
	if err != nil {
		t.Fatal(err)
	}
	l.Overrides = map[string]string{"github.com/fake/dep": depDir}
	return l
}

// fixtureConfig mirrors RepoConfig but anchors file paths at the
// fixture directory (so goldens stay short and stable) and disables
// the README doc checks, which are exercised separately.
func fixtureConfig(l *Loader, fixtureDir, importPath string) *Config {
	cfg := &Config{
		Fset:            l.Fset,
		ModulePath:      l.ModulePath,
		ModuleDir:       fixtureDir,
		GoRoot:          l.GoRoot,
		FaultPoints:     stringSet(registry.FaultPoints()),
		TraceStages:     stringSet(registry.TraceStages()),
		Metrics:         make(map[string]registry.Metric),
		CtxLoopPackages: map[string]bool{importPath: true},
	}
	for _, m := range registry.Metrics() {
		cfg.Metrics[m.Name] = m
	}
	// Flow-analyzer catalogs, scoped to the fixture packages: the
	// lockdiscipline fixture's classes in nesting order (plus the
	// generics fixture's mutex, so its coverage check stays quiet), and
	// the hotalloc fixture's catalog including one deliberately
	// dangling entry.
	cfg.LockOrder = map[string]int{
		"lockdiscipline.Outer.mu": 0,
		"lockdiscipline.Inner.mu": 1,
		"lockdiscipline.globalMu": 2,
		"generics.Cache.mu":       3,
	}
	cfg.LockCatalogPackages = map[string]bool{importPath: true}
	cfg.GoroutinePackages = map[string]bool{importPath: true}
	cfg.HotPaths = stringSet([]string{
		"hotalloc.HotFmt",
		"hotalloc.HotAppend",
		"hotalloc.HotPrealloc",
		"hotalloc.(*Buf).Record",
		"hotalloc.HotBox",
		"hotalloc.HotNoBox",
		"hotalloc.HotClosure",
		"hotalloc.HotInvoked",
		"hotalloc.Missing",
	})
	return cfg
}

// TestFixtures runs each analyzer over its golden fixture and compares
// the rendered findings against testdata/src/<name>/expect.txt. Run
// with -update to rewrite the goldens after an intentional change.
func TestFixtures(t *testing.T) {
	cases := []struct {
		fixture  string
		analyzer string
	}{
		{"stdlibonly", "stdlibonly"},
		{"floateq", "floateq"},
		{"ctxloop", "ctxloop"},
		{"registrycheck", "registry"},
		{"errwrap", "errwrap"},
		{"mutexheld", "mutexheld"},
		{"suppress", "floateq"},
		{"lockdiscipline", "lockdiscipline"},
		{"atomicmix", "atomicmix"},
		{"goroleak", "goroleak"},
		{"waitgroup", "waitgroup"},
		{"hotalloc", "hotalloc"},
	}
	l := fixtureLoader(t)
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			dir, err := filepath.Abs(filepath.Join("testdata", "src", tc.fixture))
			if err != nil {
				t.Fatal(err)
			}
			importPath := "fixture/" + tc.fixture
			pkg, err := l.LoadDir(dir, importPath)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			a := AnalyzerByName(tc.analyzer)
			if a == nil {
				t.Fatalf("no analyzer %q", tc.analyzer)
			}
			cfg := fixtureConfig(l, dir, importPath)
			findings := Run([]*Package{pkg}, cfg, []*Analyzer{a})
			var lines []string
			for _, f := range findings {
				lines = append(lines, f.String())
			}
			got := strings.Join(lines, "\n")
			golden := filepath.Join(dir, "expect.txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != strings.TrimRight(string(want), "\n") {
				t.Errorf("findings mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}

// TestGenericsFixture runs the ENTIRE suite — flow-aware analyzers
// included — over a type-parameterized package: zero findings, zero
// panics. Generic receivers, instantiation expressions, and closures
// over type parameters must flow through the CFG, summary, and class
// resolution layers untouched.
func TestGenericsFixture(t *testing.T) {
	l := fixtureLoader(t)
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "generics"))
	if err != nil {
		t.Fatal(err)
	}
	importPath := "fixture/generics"
	pkg, err := l.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading generics fixture: %v", err)
	}
	cfg := fixtureConfig(l, dir, importPath)
	for _, f := range Run([]*Package{pkg}, cfg, Analyzers()) {
		t.Errorf("unexpected finding on generic code: %s", f)
	}
}

// TestRepoClean is the self-test: the full suite over the whole module
// must report nothing. This is the same invariant CI enforces with
// `go run ./cmd/rplint ./...`; failing here means a change introduced
// a violation (fix it) or an analyzer regressed (fix that).
func TestRepoClean(t *testing.T) {
	moduleDir, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, pkgs, err := Load(moduleDir, []string{"./..."}, "")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := RepoConfig(l)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Run(pkgs, cfg, Analyzers()) {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestGlobalFindings exercises the whole-repo checks in isolation:
// registry problems surface at the registry source, and the
// registry ↔ README metric table must agree in both directions.
func TestGlobalFindings(t *testing.T) {
	cfg := &Config{
		ReadmePath: "README.md",
		Metrics: map[string]registry.Metric{
			"rp_documented_total":   {Name: "rp_documented_total"},
			"rp_undocumented_total": {Name: "rp_undocumented_total"},
		},
		ReadmeMetrics:    map[string]bool{"rp_documented_total": true, "rp_phantom_total": true},
		RegistryProblems: []string{"duplicate metric name rp_documented_total"},
	}
	var got []string
	for _, f := range GlobalFindings(cfg) {
		got = append(got, f.String())
	}
	want := []string{
		"internal/registry/registry.go:1: [registry] duplicate metric name rp_documented_total",
		"internal/registry/registry.go:1: [registry] metric family rp_undocumented_total is not documented in README.md's metric table",
		"README.md:1: [registry] README.md documents metric family rp_phantom_total that internal/registry does not declare",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("global findings mismatch\n--- got ---\n%s\n--- want ---\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}
