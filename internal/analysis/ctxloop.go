package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxLoop enforces the cancellation contract of PRs 1 and 3 on the
// pipeline's hot packages (spectrum, filter/hp, wavelet, core,
// detect): inside a function that has a cancellation signal in scope
// (a context.Context or a cached done channel), any loop that does
// real per-iteration work — allocates, or calls a same-package
// function that itself loops — must poll that signal, either directly
// (ctx.Done()/ctx.Err(), <-done) or through a helper taking the
// context or channel (ctxErr(ctx), cancelled(done)). Functions with
// no cancellation signal in scope are exempt: the contract is "never
// hold a context and ignore it in a hot loop", not "thread contexts
// everywhere".
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc:  "allocating/heavy loops in pipeline packages must poll the in-scope cancellation signal",
	Run:  runCtxLoop,
}

func runCtxLoop(p *Pass) {
	if !p.Cfg.CtxLoopPackages[p.Pkg.ImportPath] {
		return
	}
	info := p.Pkg.Info

	// Pass 1: which same-package functions are "heavy" (contain a loop,
	// transitively through same-package calls)? Calling one of these
	// per iteration is the per-frequency / per-level pattern the
	// contract covers.
	heavy := make(map[*types.Func]bool)
	bodies := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			bodies[obj] = fd
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					heavy[obj] = true
				}
				return true
			})
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, fd := range bodies {
			if heavy[obj] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := calleeFunc(info, call); callee != nil && heavy[callee] {
					heavy[obj] = true
					changed = true
				}
				return true
			})
		}
	}

	for _, fd := range bodies {
		if !hasCancelSignal(info, fd) {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			if !loopDoesWork(info, heavy, body) || loopPolls(info, body) {
				return true
			}
			p.Reportf(n.Pos(), "loop does per-iteration work but never polls the in-scope cancellation signal (ctx.Done()/ctx.Err() or the done channel); the PR 1/3 contract keeps pipeline hot loops cancelable")
			return true
		})
	}
}

// hasCancelSignal reports whether the function declares or touches a
// context.Context or done-channel value anywhere (parameters count
// only when used; an unused context cannot be polled meaningfully
// without first naming it, at which point the expression shows up).
// root may be a *ast.FuncDecl or any other subtree (goroleak hands it
// goroutine function-literal bodies).
func hasCancelSignal(info *types.Info, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if t := info.Types[expr].Type; isContextType(t) || isDoneChan(t) {
			found = true
		}
		return true
	})
	return found
}

// loopDoesWork reports whether the loop body allocates (make, new,
// append, or a composite literal) or calls a heavy same-package
// function.
func loopDoesWork(info *types.Info, heavy map[*types.Func]bool, body *ast.BlockStmt) bool {
	work := false
	ast.Inspect(body, func(n ast.Node) bool {
		if work {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBuiltinCall(info, call, "make", "new", "append") {
			work = true
			return false
		}
		if callee := calleeFunc(info, call); callee != nil && heavy[callee] {
			work = true
			return false
		}
		return true
	})
	return work
}

// loopPolls reports whether the loop body observes a cancellation
// signal: a receive from a done channel, a Done/Err/Deadline call on a
// context, or any call passing a context/done channel onward (the
// ctxErr/cancelled helper pattern — the callee owns the poll).
func loopPolls(info *types.Info, body *ast.BlockStmt) bool {
	polled := false
	ast.Inspect(body, func(n ast.Node) bool {
		if polled {
			return false
		}
		switch e := n.(type) {
		case *ast.UnaryExpr:
			if e.Op == token.ARROW && isDoneChan(info.Types[e.X].Type) {
				polled = true
			}
		case *ast.CallExpr:
			if f := calleeFunc(info, e); f != nil {
				switch f.Name() {
				case "Done", "Err", "Deadline":
					if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil && isContextType(sig.Recv().Type()) {
						polled = true
						return false
					}
				}
			}
			for _, arg := range e.Args {
				if t := info.Types[arg].Type; isContextType(t) || isDoneChan(t) {
					polled = true
					return false
				}
			}
		}
		return true
	})
	return polled
}
