package analysis

import (
	"go/ast"
	"go/types"
)

// WaitGroup catches the three misuse patterns the race detector only
// finds when the interleaving cooperates:
//
//  1. Add inside the spawned goroutine: `go func() { wg.Add(1); ... }`
//     races with the spawner's Wait — Wait can return before the
//     goroutine has run its Add. Add must happen on the spawning
//     stack, before the go statement.
//  2. Add after Wait (same function, same WaitGroup): the Wait can
//     return early, and concurrent Add-after-Wait panics ("WaitGroup
//     is reused before previous Wait has returned").
//  3. Copies: sync.WaitGroup contains its counter by value, so a
//     value parameter, value capture, or `x := wg` assignment splits
//     the counter — Done on the copy never releases the original Wait.
var WaitGroupCheck = &Analyzer{
	Name: "waitgroup",
	Doc:  "WaitGroup Add on the spawning stack before the goroutine, never after Wait, never through a copy",
	Flow: true,
	Run:  runWaitGroup,
}

func runWaitGroup(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkWGParams(p, info, fd)
			if fd.Body == nil {
				continue
			}
			checkWGAddPlacement(p, info, fd)
			checkWGCopies(p, info, fd)
		}
	}
}

// isWaitGroupType reports whether t is sync.WaitGroup (by value —
// *sync.WaitGroup is the safe way to pass one).
func isWaitGroupType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// wgMethodCall returns the WaitGroup method name and receiver text for
// calls like wg.Add(1) / wg.Done() / wg.Wait().
func wgMethodCall(info *types.Info, call *ast.CallExpr) (method, recv string, ok bool) {
	f := calleeFunc(info, call)
	if f == nil || !methodOn(f, "sync", "WaitGroup") {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	return f.Name(), lockExprText(sel.X), true
}

// checkWGParams flags sync.WaitGroup value parameters: the callee gets
// a copy, and its Done never reaches the caller's Wait.
func checkWGParams(p *Pass, info *types.Info, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		t := info.Types[field.Type].Type
		if t == nil || !isWaitGroupType(t) {
			continue
		}
		p.Reportf(field.Type.Pos(), "sync.WaitGroup passed by value: the callee operates on a copy and its Done never releases the caller's Wait; take *sync.WaitGroup")
	}
}

// checkWGAddPlacement finds Add calls inside spawned goroutine bodies
// and Add calls lexically after a Wait on the same WaitGroup.
func checkWGAddPlacement(p *Pass, info *types.Info, fd *ast.FuncDecl) {
	// Pattern 1: Add inside a go-spawned literal.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if _, isGo := m.(*ast.GoStmt); isGo {
				return false // a nested spawn restarts the pattern one level down
			}
			call, isCall := m.(*ast.CallExpr)
			if !isCall {
				return true
			}
			if method, recv, ok := wgMethodCall(info, call); ok && method == "Add" && recv != "" {
				p.Reportf(call.Pos(), "%s.Add inside the spawned goroutine races with the spawner's Wait (Wait can return before this Add runs); call Add on the spawning stack, before the go statement", recv)
			}
			return true
		})
		return true
	})

	// Pattern 2: Add after Wait, same function, same receiver text,
	// outside any function literal (a closure's Add runs at an
	// unrelated time).
	waitPos := make(map[string]ast.Node)
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, recv, ok := wgMethodCall(info, call)
		if !ok || recv == "" {
			return true
		}
		switch method {
		case "Wait":
			if _, seen := waitPos[recv]; !seen {
				waitPos[recv] = call
			}
		case "Add":
			if w, seen := waitPos[recv]; seen && call.Pos() > w.Pos() {
				p.Reportf(call.Pos(), "%s.Add after %s.Wait in the same function reuses the WaitGroup before the previous Wait has settled; use a fresh WaitGroup for the second round", recv, recv)
			}
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
}

// checkWGCopies flags assignments and call arguments that copy a
// WaitGroup value.
func checkWGCopies(p *Pass, info *types.Info, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if id, isIdent := n.Lhs[i].(*ast.Ident); isIdent && id.Name == "_" {
					continue // discarded, not a live second counter
				}
				t := info.Types[rhs].Type
				if t == nil || !isWaitGroupType(t) {
					continue
				}
				// `var wg sync.WaitGroup` arrives as a composite lit or
				// zero value, not a copy of an existing one; only flag
				// copying an existing WaitGroup-typed expression.
				switch ast.Unparen(rhs).(type) {
				case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					p.Reportf(n.Pos(), "copying a sync.WaitGroup by value splits its counter; share the original via a pointer")
				}
			}
		case *ast.CallExpr:
			f := calleeFunc(info, n)
			if f != nil && methodOn(f, "sync", "WaitGroup") {
				return true // wg.Add(1) etc: receiver use, not a copy
			}
			for _, arg := range n.Args {
				t := info.Types[arg].Type
				if t == nil || !isWaitGroupType(t) {
					continue
				}
				switch ast.Unparen(arg).(type) {
				case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					p.Reportf(arg.Pos(), "sync.WaitGroup passed by value copies its counter; pass &%s", lockExprText(ast.Unparen(arg).(ast.Expr)))
				}
			}
		}
		return true
	})
}
