package analysis

import (
	"go/ast"
	"strings"
)

// Registry cross-checks every fault-point, trace-stage, and metric
// name literal in the tree against internal/registry, the single
// source of truth introduced in this PR. A typo'd fault point silently
// never fires; a typo'd metric family either panics at scrape time or
// drifts from the README's documented surface. The analyzer requires:
//
//   - faults.Check(name): name is a constant in the fault-point registry
//   - trace.Trace.StartStage/Count/CountBool(stage, ...): stage is a
//     constant in the trace-stage registry
//   - obs.PromWriter.Family(name, help, type): all three are constants,
//     name is in the metric registry, and help/type match the catalog
//   - obs.PromWriter.Sample/Histogram/QuantileGauges and obs.FindFamily:
//     when the name argument is a constant starting with "rp_", it must
//     be a registered family (forwarded/derived names pass through)
//   - obs.PromWriter.HistogramExemplars(name, ...): the family must
//     additionally be registered with Exemplars: true — exemplars on an
//     undeclared family would silently vanish from dashboards that
//     trust the catalog, and declaring them is what the OpenMetrics
//     conformance check keys on
//
// Registry self-consistency (uniqueness, README coverage both ways) is
// checked once globally in GlobalFindings, not per package.
var Registry = &Analyzer{
	Name: "registry",
	Doc:  "fault-point, trace-stage, and metric literals must resolve against internal/registry",
	Run:  runRegistry,
}

func runRegistry(p *Pass) {
	info := p.Pkg.Info
	faultsPkg := p.Cfg.ModulePath + "/internal/faults"
	tracePkg := p.Cfg.ModulePath + "/internal/trace"
	obsPkg := p.Cfg.ModulePath + "/internal/obs"

	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			switch {
			case isPkgFunc(fn, faultsPkg, "Check") && len(call.Args) >= 1:
				name, ok := constString(info, call.Args[0])
				if !ok {
					p.Reportf(call.Args[0].Pos(), "faults.Check argument must be a registry constant, not a computed value")
				} else if !p.Cfg.FaultPoints[name] {
					p.Reportf(call.Args[0].Pos(), "fault point %q is not registered in internal/registry; a typo'd point never fires", name)
				}
			case methodOn(fn, tracePkg, "Trace") && len(call.Args) >= 1:
				switch fn.Name() {
				case "StartStage", "Count", "CountBool":
					stage, ok := constString(info, call.Args[0])
					if !ok {
						p.Reportf(call.Args[0].Pos(), "trace stage argument to %s must be a registry constant, not a computed value", fn.Name())
					} else if !p.Cfg.TraceStages[stage] {
						p.Reportf(call.Args[0].Pos(), "trace stage %q is not registered in internal/registry", stage)
					}
				}
			case methodOn(fn, obsPkg, "PromWriter"):
				switch fn.Name() {
				case "Family":
					checkFamily(p, call)
				case "Sample", "Histogram", "QuantileGauges":
					checkMetricRef(p, call, 0)
				case "HistogramExemplars":
					checkExemplarRef(p, call)
				}
			case isPkgFunc(fn, obsPkg, "FindFamily"):
				checkMetricRef(p, call, 1)
			}
			return true
		})
	}
}

// checkFamily enforces the strict contract at the registration point:
// Family(name, help, type) with all three constant and agreeing with
// the registry catalog. Help-string agreement is what keeps the
// scrape surface and the catalog from drifting apart.
func checkFamily(p *Pass, call *ast.CallExpr) {
	if len(call.Args) < 3 {
		return
	}
	info := p.Pkg.Info
	name, ok := constString(info, call.Args[0])
	if !ok {
		p.Reportf(call.Args[0].Pos(), "PromWriter.Family name must be a registry constant, not a computed value")
		return
	}
	m, registered := p.Cfg.Metrics[name]
	if !registered {
		p.Reportf(call.Args[0].Pos(), "metric family %q is not registered in internal/registry", name)
		return
	}
	if help, ok := constString(info, call.Args[1]); !ok {
		p.Reportf(call.Args[1].Pos(), "PromWriter.Family help for %q must be a constant string", name)
	} else if help != m.Help {
		p.Reportf(call.Args[1].Pos(), "help text for %q differs from the registry catalog (got %q, registry has %q)", name, help, m.Help)
	}
	if typ, ok := constString(info, call.Args[2]); !ok {
		p.Reportf(call.Args[2].Pos(), "PromWriter.Family type for %q must be a constant string", name)
	} else if typ != m.Type {
		p.Reportf(call.Args[2].Pos(), "type for %q differs from the registry catalog (got %q, registry has %q)", name, typ, m.Type)
	}
}

// checkMetricRef flags constant rp_* names that reference unregistered
// families at use sites (Sample, Histogram, QuantileGauges,
// FindFamily). Non-constant and non-rp_ arguments pass: helpers that
// forward a name variable are checked at their own Family call.
func checkMetricRef(p *Pass, call *ast.CallExpr, argIdx int) {
	if len(call.Args) <= argIdx {
		return
	}
	name, ok := constString(p.Pkg.Info, call.Args[argIdx])
	if !ok || !strings.HasPrefix(name, "rp_") {
		return
	}
	if _, registered := p.Cfg.Metrics[name]; !registered {
		p.Reportf(call.Args[argIdx].Pos(), "metric family %q is not registered in internal/registry", name)
	}
}

// checkExemplarRef enforces that HistogramExemplars call sites target
// families declared exemplar-bearing in the registry. The catalog's
// Exemplars flag is the documented contract for which series carry
// trace IDs; attaching them elsewhere drifts the scrape surface from
// the catalog without any runtime failure.
func checkExemplarRef(p *Pass, call *ast.CallExpr) {
	if len(call.Args) < 1 {
		return
	}
	name, ok := constString(p.Pkg.Info, call.Args[0])
	if !ok || !strings.HasPrefix(name, "rp_") {
		return
	}
	m, registered := p.Cfg.Metrics[name]
	if !registered {
		p.Reportf(call.Args[0].Pos(), "metric family %q is not registered in internal/registry", name)
		return
	}
	if !m.Exemplars {
		p.Reportf(call.Args[0].Pos(), "family %q carries exemplars at this call site but is not registered with Exemplars: true in internal/registry", name)
	}
}
