// Package peaks implements the peak detection used by RobustPeriod's
// Huber-ACF-Med step: Palshikar-style S1 spike scoring combined with
// simple local-maximum screening, plus the median inter-peak distance
// summarizer.
package peaks

import (
	"sort"

	"robustperiod/internal/stat/robust"
)

// Options configures peak detection.
type Options struct {
	// Height is the minimum value a point must reach to qualify as a
	// peak (applied to the raw series, e.g. an ACF).
	Height float64
	// Neighborhood is the half-window k of the Palshikar S1 score; a
	// point's score is the mean of (x[i] − max of k left neighbors)
	// and (x[i] − max of k right neighbors). <= 0 means 3.
	Neighborhood int
	// MinScore is the minimum S1 score; <= 0 disables score filtering
	// and keeps every strict local maximum above Height.
	MinScore float64
	// MinDistance suppresses peaks closer than this to a stronger
	// peak. <= 0 disables suppression.
	MinDistance int
}

func (o Options) withDefaults() Options {
	if o.Neighborhood <= 0 {
		o.Neighborhood = 3
	}
	return o
}

// Find returns the indices of peaks in x, sorted ascending.
func Find(x []float64, opts Options) []int {
	opts = opts.withDefaults()
	n := len(x)
	if n < 3 {
		return nil
	}
	var cand []int
	for i := 1; i < n-1; i++ {
		if x[i] < opts.Height {
			continue
		}
		// Strict local maximum (plateaus take the left edge).
		if x[i] <= x[i-1] || x[i] < x[i+1] {
			continue
		}
		if opts.MinScore > 0 && s1Score(x, i, opts.Neighborhood) < opts.MinScore {
			continue
		}
		cand = append(cand, i)
	}
	if opts.MinDistance > 0 && len(cand) > 1 {
		cand = suppress(x, cand, opts.MinDistance)
	}
	return cand
}

// s1Score is Palshikar's S1 spike function: the average over both
// sides of the maximum difference between x[i] and its k neighbors on
// that side (Palshikar 2009).
func s1Score(x []float64, i, k int) float64 {
	left, right := 0.0, 0.0
	haveL, haveR := false, false
	for d := 1; d <= k; d++ {
		if j := i - d; j >= 0 {
			if diff := x[i] - x[j]; !haveL || diff > left {
				left = diff
				haveL = true
			}
		}
		if j := i + d; j < len(x) {
			if diff := x[i] - x[j]; !haveR || diff > right {
				right = diff
				haveR = true
			}
		}
	}
	switch {
	case haveL && haveR:
		return (left + right) / 2
	case haveL:
		return left
	case haveR:
		return right
	default:
		return 0
	}
}

// suppress drops peaks within minDist of a stronger accepted peak,
// scanning candidates in decreasing height order.
func suppress(x []float64, cand []int, minDist int) []int {
	order := append([]int(nil), cand...)
	sort.Slice(order, func(a, b int) bool { return x[order[a]] > x[order[b]] })
	kept := make([]int, 0, len(order))
	for _, idx := range order {
		ok := true
		for _, k := range kept {
			if abs(idx-k) < minDist {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, idx)
		}
	}
	sort.Ints(kept)
	return kept
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// MedianDistance returns the median gap between consecutive peak
// indices, rounded to the nearest integer, or 0 if fewer than two
// peaks are given. This is the "Med" of Huber-ACF-Med (§3.4.2).
func MedianDistance(idx []int) int {
	if len(idx) < 2 {
		return 0
	}
	gaps := make([]float64, len(idx)-1)
	for i := 1; i < len(idx); i++ {
		gaps[i-1] = float64(idx[i] - idx[i-1])
	}
	m := robust.MedianInPlace(gaps)
	return int(m + 0.5)
}
