package peaks

import (
	"math"
	"math/rand"
	"testing"
)

func TestFindSimplePeaks(t *testing.T) {
	x := []float64{0, 1, 0, 2, 0, 3, 0}
	got := Find(x, Options{})
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestFindHeightFilter(t *testing.T) {
	x := []float64{0, 1, 0, 2, 0, 3, 0}
	got := Find(x, Options{Height: 1.5})
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("got %v", got)
	}
}

func TestFindTooShort(t *testing.T) {
	if Find([]float64{1, 2}, Options{}) != nil {
		t.Error("short input should yield nil")
	}
}

func TestFindNoEndpointPeaks(t *testing.T) {
	x := []float64{5, 1, 1, 1, 9}
	if got := Find(x, Options{}); len(got) != 0 {
		t.Errorf("endpoints must not be peaks, got %v", got)
	}
}

func TestFindPlateauTakesLeftEdge(t *testing.T) {
	x := []float64{0, 2, 2, 0}
	got := Find(x, Options{})
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("plateau handling: got %v", got)
	}
}

func TestFindSinusoidPeaks(t *testing.T) {
	n := 400
	period := 50
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * float64(i) / float64(period))
	}
	got := Find(x, Options{Height: 0.5})
	// Peaks at 0 (excluded: endpoint effects aside, index 0 can't
	// qualify), 50, 100, ..., 350.
	if len(got) < 7 {
		t.Fatalf("found %d peaks: %v", len(got), got)
	}
	for _, p := range got {
		if p%period != 0 {
			t.Errorf("peak at %d not a multiple of %d", p, period)
		}
	}
	if d := MedianDistance(got); d != period {
		t.Errorf("median distance %d, want %d", d, period)
	}
}

func TestMinScoreRejectsNoiseBumps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 300
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2*math.Pi*float64(i)/60) + 0.05*rng.NormFloat64()
	}
	loose := Find(x, Options{Height: -1})
	strict := Find(x, Options{Height: -1, MinScore: 0.15, Neighborhood: 5})
	if len(strict) >= len(loose) {
		t.Errorf("MinScore should prune: %d vs %d", len(strict), len(loose))
	}
	// Every strict peak must also be a loose peak.
	set := map[int]bool{}
	for _, p := range loose {
		set[p] = true
	}
	for _, p := range strict {
		if !set[p] {
			t.Errorf("strict peak %d missing from loose set", p)
		}
	}
	// With a sensible height threshold and distance suppression the
	// median spacing recovers the true period.
	good := Find(x, Options{Height: 0.5, MinDistance: 30})
	if d := MedianDistance(good); d < 55 || d > 65 {
		t.Errorf("median distance %d, want ~60 (peaks %v)", d, good)
	}
}

func TestMinDistanceSuppression(t *testing.T) {
	x := []float64{0, 5, 0, 4, 0, 0, 0, 0, 0, 0, 0, 3, 0}
	got := Find(x, Options{MinDistance: 5})
	// Peaks at 1 (h=5), 3 (h=4, within 5 of stronger 1 → dropped), 11.
	if len(got) != 2 || got[0] != 1 || got[1] != 11 {
		t.Errorf("got %v", got)
	}
}

func TestMedianDistanceEdgeCases(t *testing.T) {
	if MedianDistance(nil) != 0 || MedianDistance([]int{3}) != 0 {
		t.Error("fewer than 2 peaks should give 0")
	}
	if got := MedianDistance([]int{0, 10, 20, 31}); got != 10 {
		t.Errorf("got %d, want 10", got)
	}
	// Even number of gaps: median of {10, 12} = 11.
	if got := MedianDistance([]int{0, 10, 22}); got != 11 {
		t.Errorf("got %d, want 11", got)
	}
}

func TestS1ScoreMonotone(t *testing.T) {
	// A sharp isolated spike should outscore a broad bump of the same
	// height.
	sharp := []float64{0, 0, 0, 1, 0, 0, 0}
	broad := []float64{0, 0.8, 0.95, 1, 0.95, 0.8, 0}
	if s1Score(sharp, 3, 2) <= s1Score(broad, 3, 2) {
		t.Error("sharp spike should have higher S1 score")
	}
}

func BenchmarkFind(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 4096)
	for i := range x {
		x[i] = math.Cos(2*math.Pi*float64(i)/100) + 0.1*rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Find(x, Options{Height: 0.3, MinScore: 0.1})
	}
}
