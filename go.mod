module robustperiod

go 1.22
