package robustperiod

import (
	"math"
	"math/rand"
	"testing"
)

func synth(n int, periods []int, sigma, eta float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for _, p := range periods {
		ph := rng.Float64() * 2 * math.Pi
		for i := range x {
			x[i] += math.Sin(2*math.Pi*float64(i)/float64(p) + ph)
		}
	}
	for i := range x {
		x[i] += sigma * rng.NormFloat64()
		if rng.Float64() < eta {
			x[i] += (rng.Float64()*2 - 1) * 10
		}
	}
	return x
}

func TestDetectPublicAPI(t *testing.T) {
	x := synth(1000, []int{24, 168}, 0.2, 0.02, 1)
	periods, err := Detect(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	has := func(want int) bool {
		for _, p := range periods {
			if math.Abs(float64(p-want)) <= 0.02*float64(want)+1 {
				return true
			}
		}
		return false
	}
	if !has(24) || !has(168) {
		t.Errorf("periods = %v, want 24 and 168", periods)
	}
}

func TestDetectWithOptions(t *testing.T) {
	x := synth(800, []int{50}, 0.1, 0, 2)
	periods, err := Detect(x, &Options{Wavelet: Daub4, EnergyShare: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(periods) == 0 || periods[0] < 48 || periods[0] > 52 {
		t.Errorf("periods = %v", periods)
	}
}

func TestDetectDetailsDiagnostics(t *testing.T) {
	x := synth(1000, []int{60}, 0.1, 0.01, 3)
	res, err := DetectDetails(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) == 0 || res.Preprocessed == nil {
		t.Fatal("diagnostics missing")
	}
	anySelected := false
	for _, lv := range res.Levels {
		if lv.Selected {
			anySelected = true
			if lv.Detection.Periodogram == nil || lv.Detection.ACF == nil {
				t.Error("selected level missing spectra")
			}
		}
	}
	if !anySelected {
		t.Error("no level selected")
	}
}

func TestDetectSinglePublic(t *testing.T) {
	x := synth(600, []int{40}, 0.2, 0.02, 4)
	res, err := DetectSingle(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Periodic || res.Final < 39 || res.Final > 41 {
		t.Errorf("single detection: %+v", res.Final)
	}
}

func TestDetectErrorPropagates(t *testing.T) {
	if _, err := Detect(make([]float64, 5), nil); err == nil {
		t.Error("expected error for tiny series")
	}
}

func BenchmarkPublicDetect(b *testing.B) {
	x := synth(1000, []int{20, 50, 100}, 0.3, 0.01, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Detect(x, nil); err != nil {
			b.Fatal(err)
		}
	}
}
