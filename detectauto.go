package robustperiod

import (
	"fmt"
	"math"

	"robustperiod/internal/dsp/fft"
)

// DetectAuto handles arbitrarily long series the way the paper's
// deployment section (§4.5.1) describes: "time series with more length
// can be down-sampled and tested for periodicity". When the series is
// longer than maxLen (<= 0 means 5000), it is decimated by the
// smallest integer factor that fits, using block means as the
// anti-alias filter; detection runs at the reduced resolution, and
// every found period is scaled back and refined against the
// full-resolution autocorrelation function, so the final answers carry
// full-resolution accuracy. Series already within maxLen go through
// Detect unchanged.
//
// Decimation by factor k makes periods shorter than ~4k samples
// undetectable; choose maxLen accordingly when very short cycles
// matter.
func DetectAuto(y []float64, maxLen int, opts *Options) ([]int, error) {
	if maxLen <= 0 {
		maxLen = 5000
	}
	if maxLen < 64 {
		maxLen = 64
	}
	n := len(y)
	if n <= maxLen {
		return Detect(y, opts)
	}
	factor := (n + maxLen - 1) / maxLen
	reduced := blockMeans(y, factor)
	periods, err := Detect(reduced, opts)
	if err != nil {
		return nil, fmt.Errorf("robustperiod: downsampled detection: %w", err)
	}
	if len(periods) == 0 {
		return nil, nil
	}
	// Refine each scaled-back period on the full-resolution ACF: the
	// decimated estimate is only accurate to ±factor samples.
	acf := fft.Autocorrelation(y)
	out := make([]int, 0, len(periods))
	for _, p := range periods {
		full := p * factor
		if full > n/2 {
			full = n / 2
		}
		out = append(out, refineOnACF(acf, full, factor))
	}
	return dedupInts(out), nil
}

// blockMeans decimates x by averaging consecutive blocks of k samples
// (the trailing partial block is averaged over its actual length).
func blockMeans(x []float64, k int) []float64 {
	if k <= 1 {
		return append([]float64(nil), x...)
	}
	out := make([]float64, 0, (len(x)+k-1)/k)
	for start := 0; start < len(x); start += k {
		end := start + k
		if end > len(x) {
			end = len(x)
		}
		s := 0.0
		for _, v := range x[start:end] {
			s += v
		}
		out = append(out, s/float64(end-start))
	}
	return out
}

// refineOnACF snaps p to the strongest ACF local maximum within
// ±(slack+p/25) lags, keeping p when no peak exists.
func refineOnACF(acf []float64, p, slack int) int {
	w := slack + p/25
	if w < 2 {
		w = 2
	}
	lo, hi := p-w, p+w
	if lo < 2 {
		lo = 2
	}
	if hi > len(acf)-2 {
		hi = len(acf) - 2
	}
	best, bestV := -1, math.Inf(-1)
	for i := lo; i <= hi; i++ {
		if acf[i] >= acf[i-1] && acf[i] >= acf[i+1] && acf[i] > bestV {
			best, bestV = i, acf[i]
		}
	}
	if best < 0 || bestV <= 0 {
		return p
	}
	return best
}

func dedupInts(ps []int) []int {
	if len(ps) == 0 {
		return nil
	}
	out := ps[:0]
	seen := map[int]bool{}
	for _, p := range ps {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}
