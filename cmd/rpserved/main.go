// Command rpserved runs the RobustPeriod detection service: a JSON
// HTTP API over the library, with a bounded worker pool, an LRU
// result cache, per-request timeouts, expvar metrics, and graceful
// drain on SIGTERM/SIGINT.
//
// Endpoints:
//
//	POST /v1/detect        {"series":[...], "options":{...}, "details":bool}
//	                       (?debug=1 bypasses the cache and inlines
//	                       per-stage pipeline timings in the response)
//	POST /v1/detect/batch  {"series":[[...],[...]], "options":{...}}
//	GET  /healthz
//	GET  /metrics
//
// With -debug-addr a second listener serves net/http/pprof under
// /debug/pprof/ and the expvar dump under /debug/vars; keep it on
// loopback or an internal interface.
//
// Example:
//
//	rpserved -addr :8080 -debug-addr 127.0.0.1:6060 &
//	curl -s localhost:8080/v1/detect -d '{"series":[...]}'
//	curl -s 'localhost:8080/v1/detect?debug=1' -d '{"series":[...]}'
//	go tool pprof localhost:6060/debug/pprof/profile
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"robustperiod/internal/faults"
	"robustperiod/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rpserved: ")

	var cfg serve.Config
	flag.StringVar(&cfg.Addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.DebugAddr, "debug-addr", "", "debug listener address for pprof + expvar, e.g. 127.0.0.1:6060 (empty disables)")
	flag.DurationVar(&cfg.RequestTimeout, "timeout", 0, "per-request compute deadline (0 = 30s)")
	flag.DurationVar(&cfg.DrainTimeout, "drain", 0, "graceful-shutdown drain deadline (0 = 30s)")
	flag.Int64Var(&cfg.MaxBodyBytes, "max-body", 0, "request body limit in bytes (0 = 8 MiB)")
	flag.IntVar(&cfg.MaxSeriesLen, "max-series", 0, "points per series limit (0 = 1048576)")
	flag.IntVar(&cfg.MaxBatch, "max-batch", 0, "series per batch request limit (0 = 256)")
	flag.IntVar(&cfg.Workers, "workers", 0, "detection worker count (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.CacheSize, "cache", 0, "LRU result-cache entries (0 = 1024, negative disables)")
	flag.IntVar(&cfg.BreakerThreshold, "breaker-threshold", 0, "consecutive 500s that open an endpoint's circuit breaker (0 = 5, negative disables)")
	flag.DurationVar(&cfg.BreakerCooldown, "breaker-cooldown", 0, "open-breaker cooldown before a half-open probe (0 = 5s)")
	flag.Parse()

	// RP_FAULTS arms the deterministic fault-injection plan, e.g.
	//   RP_FAULTS='spectrum/solver:error:p=0.05:seed=1,serve/cache:error:p=0.01'
	// Chaos drills only — never set in production.
	if spec := os.Getenv("RP_FAULTS"); spec != "" {
		plan, err := faults.Parse(spec)
		if err != nil {
			log.Fatalf("RP_FAULTS: %v", err)
		}
		faults.Enable(plan)
		log.Printf("FAULT INJECTION ARMED: %s", faults.Describe())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	srv := serve.New(cfg)
	log.Printf("listening on %s", cfg.Addr)
	if cfg.DebugAddr != "" {
		log.Printf("debug listener (pprof, expvar) on %s", cfg.DebugAddr)
	}
	if err := srv.Run(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Printf("drained, bye")
}
