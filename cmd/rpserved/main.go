// Command rpserved runs the RobustPeriod detection service: a JSON
// HTTP API over the library, with a bounded worker pool, an LRU
// result cache, per-request timeouts, structured request-correlated
// logging, Prometheus metrics, a post-mortem flight recorder, and
// graceful drain on SIGTERM/SIGINT.
//
// Endpoints:
//
//	POST /v1/detect        {"series":[...], "options":{...}, "details":bool}
//	                       (?debug=1 bypasses the cache and inlines
//	                       per-stage pipeline timings in the response)
//	POST /v1/detect/batch  {"series":[[...],[...]], "options":{...}}
//	POST /v1/jobs          async submit: same body as /v1/detect, answers
//	                       202 + job ID; identical in-flight submissions
//	                       coalesce and dequeue is fair-share across
//	                       tenants (X-API-Key header)
//	GET  /v1/jobs/{id}     poll an async job: state, then the result
//	GET  /healthz
//	GET  /metrics          Prometheus text exposition
//
// Every compute response carries an X-Request-ID header; the same ID
// correlates the structured logs and retrieves the request's
// post-mortem record from the flight recorder. Sampled requests (and
// any request arriving with a sampled W3C traceparent header) also
// carry a traceparent response header whose trace ID links the span
// store, the logs, and the OpenMetrics latency exemplars
// (GET /metrics with Accept: application/openmetrics-text).
//
// With -debug-addr a second listener serves net/http/pprof under
// /debug/pprof/, the expvar dump under /debug/vars, the flight
// recorder under /debug/requests[/{id}], the span store under
// /debug/traces[/{traceid}], and the SLO burn-rate engine under
// /debug/slo; keep it on loopback or an internal interface.
//
// Example:
//
//	rpserved -addr :8080 -debug-addr 127.0.0.1:6060 -log-format json &
//	curl -si localhost:8080/v1/detect -d '{"series":[...]}' | grep X-Request-ID
//	curl -s 127.0.0.1:6060/debug/requests/<id>
//	go tool pprof localhost:6060/debug/pprof/profile
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"robustperiod/internal/faults"
	"robustperiod/internal/obs"
	"robustperiod/internal/serve"
	"robustperiod/internal/wal"
)

// validateConfig rejects flag values that would otherwise be absorbed
// silently (the serve defaults treat any non-positive value as "use
// the default", so a typo like -jobs-queue -100 would start a healthy-
// looking server with a 4096 queue instead of failing loudly). Flags
// where negative is a documented mode (-cache, -breaker-threshold:
// negative disables) are deliberately not checked here.
func validateConfig(cfg serve.Config) error {
	if cfg.RequestTimeout < 0 {
		return fmt.Errorf("-timeout must not be negative, got %v", cfg.RequestTimeout)
	}
	if cfg.DrainTimeout < 0 {
		return fmt.Errorf("-drain must not be negative, got %v", cfg.DrainTimeout)
	}
	if cfg.JobsQueue < 0 {
		return fmt.Errorf("-jobs-queue must not be negative, got %d", cfg.JobsQueue)
	}
	if cfg.JobsPerTenant < 0 {
		return fmt.Errorf("-jobs-per-tenant must not be negative, got %d", cfg.JobsPerTenant)
	}
	if cfg.JobsStore < 0 {
		return fmt.Errorf("-jobs-store must not be negative, got %d", cfg.JobsStore)
	}
	if cfg.JobsQuantum < 0 {
		return fmt.Errorf("-jobs-quantum must not be negative, got %d", cfg.JobsQuantum)
	}
	if cfg.JobsTTL < 0 {
		return fmt.Errorf("-jobs-ttl must not be negative, got %v", cfg.JobsTTL)
	}
	if _, _, err := wal.ParsePolicy(cfg.JobsFsync); err != nil {
		return fmt.Errorf("-fsync: %w", err)
	}
	if cfg.TraceStoreSize < 0 {
		return fmt.Errorf("-trace-store must not be negative, got %d", cfg.TraceStoreSize)
	}
	if cfg.SLOInterval < 0 {
		return fmt.Errorf("-slo-interval must not be negative, got %v", cfg.SLOInterval)
	}
	if cfg.SLOLatencyTarget < 0 {
		return fmt.Errorf("-slo-latency-target must not be negative, got %v", cfg.SLOLatencyTarget)
	}
	if cfg.ProfileMax < 0 {
		return fmt.Errorf("-profile-max must not be negative, got %d", cfg.ProfileMax)
	}
	if cfg.ProfileCPU < 0 {
		return fmt.Errorf("-profile-cpu must not be negative, got %v", cfg.ProfileCPU)
	}
	if cfg.TenantMaxLabels < 0 {
		return fmt.Errorf("-tenant-labels must not be negative, got %d", cfg.TenantMaxLabels)
	}
	return nil
}

func main() {
	var cfg serve.Config
	flag.StringVar(&cfg.Addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.DebugAddr, "debug-addr", "", "debug listener address for pprof + expvar + flight recorder, e.g. 127.0.0.1:6060 (empty disables)")
	flag.DurationVar(&cfg.RequestTimeout, "timeout", 0, "per-request compute deadline (0 = 30s)")
	flag.DurationVar(&cfg.DrainTimeout, "drain", 0, "graceful-shutdown drain deadline (0 = 30s)")
	flag.Int64Var(&cfg.MaxBodyBytes, "max-body", 0, "request body limit in bytes (0 = 8 MiB)")
	flag.IntVar(&cfg.MaxSeriesLen, "max-series", 0, "points per series limit (0 = 1048576)")
	flag.IntVar(&cfg.MaxBatch, "max-batch", 0, "series per batch request limit (0 = 256)")
	flag.IntVar(&cfg.Workers, "workers", 0, "detection worker count (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.CacheSize, "cache", 0, "LRU result-cache entries (0 = 1024, negative disables)")
	flag.IntVar(&cfg.BreakerThreshold, "breaker-threshold", 0, "consecutive 500s that open an endpoint's circuit breaker (0 = 5, negative disables)")
	flag.DurationVar(&cfg.BreakerCooldown, "breaker-cooldown", 0, "open-breaker cooldown before a half-open probe (0 = 5s)")
	flag.IntVar(&cfg.AccessLogEvery, "access-log-every", 0, "log every Nth healthy compute request (0 = 64, 1 = all, negative disables; errors always log)")
	flag.IntVar(&cfg.RecorderSize, "recorder-size", 0, "flight-recorder retained request records (0 = 256)")
	flag.IntVar(&cfg.JobsQueue, "jobs-queue", 0, "pending async job executions across all tenants (0 = 4096)")
	flag.IntVar(&cfg.JobsPerTenant, "jobs-per-tenant", 0, "live async jobs per API key (0 = jobs-queue/4)")
	flag.DurationVar(&cfg.JobsTTL, "jobs-ttl", 0, "retention of finished async jobs (0 = 5m)")
	flag.IntVar(&cfg.JobsStore, "jobs-store", 0, "retained finished async jobs (0 = 4096)")
	flag.IntVar(&cfg.JobsQuantum, "jobs-quantum", 0, "fair-share scheduling quantum in series points (0 = 4096)")
	flag.StringVar(&cfg.JobsDataDir, "data-dir", "", "directory for the durable async-job store (WAL + snapshot); empty keeps jobs in-memory")
	flag.StringVar(&cfg.JobsFsync, "fsync", "always", "WAL fsync policy with -data-dir: always, never, or an interval like 100ms")
	flag.IntVar(&cfg.TraceSampleEvery, "trace-sample", 0, "head-sample every Nth request for span tracing (0 = 16, 1 = all, negative disables; an incoming sampled traceparent always records)")
	flag.IntVar(&cfg.TraceStoreSize, "trace-store", 0, "retained traces in the in-memory span store (0 = 256)")
	flag.DurationVar(&cfg.SLOInterval, "slo-interval", 0, "SLO burn-rate evaluation interval (0 = 10s)")
	flag.DurationVar(&cfg.SLOLatencyTarget, "slo-latency-target", 0, "latency-SLO threshold a P99-good request must beat (0 = 500ms)")
	flag.StringVar(&cfg.ProfileDir, "profile-dir", "", "directory for pprof captures on fast-burn SLO alerts (empty disables)")
	flag.IntVar(&cfg.ProfileMax, "profile-max", 0, "retained fast-burn profile capture sets (0 = 8)")
	flag.DurationVar(&cfg.ProfileCPU, "profile-cpu", 0, "CPU-profile window per fast-burn capture (0 = 5s)")
	flag.IntVar(&cfg.TenantMaxLabels, "tenant-labels", 0, "distinct tenant metric labels before new API keys fold into \"other\" (0 = 64)")
	logFormat := flag.String("log-format", "text", "log encoding: "+strings.Join(obs.LogFormats(), "|"))
	logLevel := flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println(obs.GetBuildInfo())
		return
	}

	if err := validateConfig(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "rpserved: %v\n", err)
		os.Exit(2)
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "rpserved: -log-level: %v\n", err)
		os.Exit(2)
	}
	logger, err := obs.NewLogger(*logFormat, level, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rpserved: -log-format: %v\n", err)
		os.Exit(2)
	}
	cfg.Logger = logger

	bi := obs.GetBuildInfo()
	logger.Info("rpserved starting",
		slog.String("go_version", bi.GoVersion),
		slog.String("revision", bi.Revision),
		slog.Bool("dirty", bi.Dirty))

	// RP_FAULTS arms the deterministic fault-injection plan, e.g.
	//   RP_FAULTS='spectrum/solver:error:p=0.05:seed=1,serve/cache:error:p=0.01'
	// Chaos drills only — never set in production.
	if spec := os.Getenv("RP_FAULTS"); spec != "" {
		plan, err := faults.Parse(spec)
		if err != nil {
			logger.Error("RP_FAULTS invalid", slog.Any("error", err))
			os.Exit(1)
		}
		faults.Enable(plan)
		logger.Warn("FAULT INJECTION ARMED", slog.String("plan", faults.Describe()))
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	srv, err := serve.New(cfg)
	if err != nil {
		logger.Error("server init failed", slog.Any("error", err))
		os.Exit(1)
	}
	if err := srv.Run(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("server failed", slog.Any("error", err))
		os.Exit(1)
	}
	logger.Info("drained, bye")
}
