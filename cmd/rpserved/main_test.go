package main

import (
	"strings"
	"testing"
	"time"

	"robustperiod/internal/serve"
)

// TestValidateConfigRejectsNegatives: every tuning flag whose serve
// default treats non-positive as "use the default" must fail loudly
// on a negative value instead of silently starting with the default.
func TestValidateConfigRejectsNegatives(t *testing.T) {
	cases := []struct {
		flag string // expected in the error message
		cfg  serve.Config
	}{
		{"-timeout", serve.Config{RequestTimeout: -time.Second}},
		{"-drain", serve.Config{DrainTimeout: -time.Second}},
		{"-jobs-queue", serve.Config{JobsQueue: -1}},
		{"-jobs-per-tenant", serve.Config{JobsPerTenant: -1}},
		{"-jobs-store", serve.Config{JobsStore: -1}},
		{"-jobs-quantum", serve.Config{JobsQuantum: -1}},
		{"-jobs-ttl", serve.Config{JobsTTL: -time.Minute}},
		{"-fsync", serve.Config{JobsFsync: "-5ms"}},
		{"-fsync", serve.Config{JobsFsync: "sometimes"}},
	}
	for _, tc := range cases {
		err := validateConfig(tc.cfg)
		if err == nil {
			t.Errorf("validateConfig(%+v): want error mentioning %s, got nil", tc.cfg, tc.flag)
			continue
		}
		if !strings.Contains(err.Error(), tc.flag) {
			t.Errorf("validateConfig error %q does not name the offending flag %s", err, tc.flag)
		}
	}
}

// TestValidateConfigAcceptsDefaultsAndDocumentedModes: the zero
// config, every fsync spelling, and the documented negative modes
// (-cache and -breaker-threshold use negative = disable) pass.
func TestValidateConfigAcceptsDefaultsAndDocumentedModes(t *testing.T) {
	good := []serve.Config{
		{},
		{JobsFsync: "always"},
		{JobsFsync: "never"},
		{JobsFsync: "100ms", JobsDataDir: "/tmp/x"},
		{CacheSize: -1, BreakerThreshold: -1},
		{RequestTimeout: time.Second, DrainTimeout: time.Second,
			JobsQueue: 10, JobsPerTenant: 5, JobsStore: 10,
			JobsQuantum: 100, JobsTTL: time.Minute},
	}
	for _, cfg := range good {
		if err := validateConfig(cfg); err != nil {
			t.Errorf("validateConfig(%+v) = %v, want nil", cfg, err)
		}
	}
}
