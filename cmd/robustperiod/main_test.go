package main

import (
	"os"
	"path/filepath"
	"testing"

	"robustperiod"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "series.csv")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestReadSeriesPlain(t *testing.T) {
	p := writeTemp(t, "1.5\n2\n\n3.25\n")
	got, err := readSeries(p, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 2, 3.25}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestReadSeriesColumnAndHeader(t *testing.T) {
	p := writeTemp(t, "ts,value\n0,10\n1,20\n2,30\n")
	got, err := readSeries(p, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[2] != 30 {
		t.Fatalf("got %v", got)
	}
}

func TestReadSeriesErrors(t *testing.T) {
	p := writeTemp(t, "1,2\n")
	if _, err := readSeries(p, 5, false); err == nil {
		t.Error("out-of-range column should error")
	}
	p2 := writeTemp(t, "abc\n")
	if _, err := readSeries(p2, 0, false); err == nil {
		t.Error("non-numeric value should error")
	}
	if _, err := readSeries(filepath.Join(t.TempDir(), "missing.csv"), 0, false); err == nil {
		t.Error("missing file should error")
	}
}

func TestWaveletKindMapping(t *testing.T) {
	cases := map[string]robustperiod.WaveletKind{
		"haar": robustperiod.Haar,
		"db1":  robustperiod.Haar,
		"db2":  robustperiod.Daub4,
		"db4":  robustperiod.Daub8,
		"DB10": robustperiod.Daub20,
	}
	for name, want := range cases {
		got, err := waveletKind(name)
		if err != nil || got != want {
			t.Errorf("waveletKind(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := waveletKind("db99"); err == nil {
		t.Error("unknown wavelet should error")
	}
}
