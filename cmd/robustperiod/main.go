// Command robustperiod detects periodicities in a univariate time
// series read from a CSV/plain-text file (or stdin): one numeric value
// per line, or a chosen column of a comma-separated file. It prints
// the detected period lengths, optionally with the full per-level
// diagnostic table (the paper's Fig. 5).
//
// Examples:
//
//	robustperiod -in metrics.csv
//	robustperiod -in metrics.csv -col 2 -skip-header
//	cat series.txt | robustperiod -details
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"strconv"
	"strings"

	"robustperiod"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("robustperiod: ")

	var (
		inPath     = flag.String("in", "-", "input file path ('-' = stdin)")
		col        = flag.Int("col", 0, "0-based column of a comma-separated file")
		skipHeader = flag.Bool("skip-header", false, "skip the first input line")
		details    = flag.Bool("details", false, "print per-level diagnostics (paper Fig. 5)")
		wavelet    = flag.String("wavelet", "db4", "wavelet filter: "+strings.Join(robustperiod.WaveletNames(), ", "))
		lambda     = flag.Float64("lambda", 0, "HP-filter λ (0 = automatic from series length)")
		alpha      = flag.Float64("alpha", 0, "Fisher-test significance level (0 = default 0.01)")
		energy     = flag.Float64("energy", 0, "wavelet-variance energy share to process (0 = default 0.95)")
		raw        = flag.Bool("raw", false, "skip detrending/normalization (data is preprocessed already)")
		interp     = flag.Bool("interpolate", false, "fill missing values (empty fields or NaN) by linear interpolation")
		anomalies  = flag.Bool("anomalies", false, "also decompose with the detected periods and print anomalous points")
		threshold  = flag.Float64("threshold", 0, "anomaly threshold in robust σ (0 = default 4)")
		decompOut  = flag.String("decompose", "", "write trend,seasonal,remainder CSV to this path using the detected periods")
	)
	flag.Parse()

	series, err := readSeriesNaN(*inPath, *col, *skipHeader, *interp)
	if err != nil {
		log.Fatal(err)
	}
	if *interp {
		filled, mask := robustperiod.Interpolate(series)
		series = filled
		missing := 0
		for _, m := range mask {
			if m {
				missing++
			}
		}
		if missing > 0 {
			fmt.Fprintf(os.Stderr, "interpolated %d missing points (%.1f%%)\n",
				missing, 100*float64(missing)/float64(len(series)))
		}
	}
	if len(series) == 0 {
		log.Fatal("no data points parsed")
	}

	kind, err := waveletKind(*wavelet)
	if err != nil {
		log.Fatal(err)
	}
	opts := &robustperiod.Options{
		Lambda:         *lambda,
		Wavelet:        kind,
		EnergyShare:    *energy,
		SkipPreprocess: *raw,
	}
	opts.Detect.Alpha = *alpha

	res, err := robustperiod.DetectDetails(series, opts)
	if err != nil {
		log.Fatal(err)
	}

	if len(res.Periods) == 0 {
		fmt.Println("no periodicity detected")
	} else {
		strs := make([]string, len(res.Periods))
		for i, p := range res.Periods {
			strs[i] = strconv.Itoa(p)
		}
		fmt.Printf("periods: %s\n", strings.Join(strs, ", "))
	}
	if *details {
		fmt.Println()
		fmt.Printf("%-6s %-12s %-9s %-10s %-6s %-6s %-6s %s\n",
			"level", "waveletVar", "selected", "p-value", "per_T", "acf_T", "fin_T", "periodic")
		for _, lv := range res.Levels {
			d := lv.Detection
			fmt.Printf("%-6d %-12.5f %-9v %-10.2e %-6d %-6d %-6d %v\n",
				lv.Level, lv.Variance.Variance, lv.Selected,
				d.PValue, d.Candidate, d.ACFPeriod, d.Final, d.Periodic)
		}
	}

	if (*anomalies || *decompOut != "") && len(res.Periods) == 0 {
		log.Fatal("no periods detected; decomposition/anomaly output needs at least one")
	}
	if *anomalies {
		ares, err := robustperiod.DetectAnomalies(series, res.Periods,
			robustperiod.AnomalyOptions{Threshold: *threshold})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%d anomalous points (robust σ=%.4g):\n", len(ares.Anomalies), ares.Scale)
		for _, a := range ares.Anomalies {
			fmt.Printf("  t=%-8d value=%-12.4g expected=%-12.4g score=%.1f\n",
				a.Index, a.Value, a.Expected, a.Score)
		}
	}
	if *decompOut != "" {
		if err := writeDecomposition(*decompOut, series, res.Periods); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote decomposition to %s\n", *decompOut)
	}
}

// writeDecomposition writes index,value,trend,seasonal...,remainder.
func writeDecomposition(path string, series []float64, periods []int) error {
	dec, err := robustperiod.Decompose(series, periods, robustperiod.DecomposeOptions{})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	defer w.Flush()
	fmt.Fprint(w, "t,value,trend")
	for _, p := range dec.Periods {
		fmt.Fprintf(w, ",seasonal%d", p)
	}
	fmt.Fprintln(w, ",remainder")
	for i := range series {
		fmt.Fprintf(w, "%d,%g,%g", i, series[i], dec.Trend[i])
		for _, s := range dec.Seasonals {
			fmt.Fprintf(w, ",%g", s[i])
		}
		fmt.Fprintf(w, ",%g\n", dec.Remainder[i])
	}
	return nil
}

func readSeries(path string, col int, skipHeader bool) ([]float64, error) {
	return readSeriesNaN(path, col, skipHeader, false)
}

// readSeriesNaN parses one column of a CSV/plain file. With allowNaN,
// empty fields and the literals "nan"/"na"/"null" become NaN markers
// for later interpolation; otherwise they are parse errors.
func readSeriesNaN(path string, col int, skipHeader, allowNaN bool) ([]float64, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var out []float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if skipHeader && lineNo == 1 {
			continue
		}
		if line == "" {
			if allowNaN && lineNo > 1 {
				out = append(out, math.NaN())
			}
			continue
		}
		fields := strings.Split(line, ",")
		if col >= len(fields) {
			return nil, fmt.Errorf("line %d: column %d out of range (%d columns)", lineNo, col, len(fields))
		}
		field := strings.TrimSpace(fields[col])
		if allowNaN {
			switch strings.ToLower(field) {
			case "", "nan", "na", "null":
				out = append(out, math.NaN())
				continue
			}
		}
		v, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, v)
	}
	return out, sc.Err()
}

// waveletKind resolves a -wavelet flag value through the library's
// canonical parser, so the flag's help text, the accepted names and
// the wavelet.Kind set can never drift apart. An empty value keeps
// the library default (db4); unknown names are errors, not silent
// defaults.
func waveletKind(name string) (robustperiod.WaveletKind, error) {
	if name == "" {
		return robustperiod.Daub8, nil
	}
	return robustperiod.ParseWavelet(name)
}
