// Command rplint runs the repository's static-analysis suite: six
// analyzers (see internal/analysis and the README "Static analysis"
// section) that enforce the pipeline's correctness invariants over
// every package matched by the given patterns (default ./...).
//
// Usage:
//
//	go run ./cmd/rplint [-json] [-list] [-listcache file] [-only names] [patterns...]
//
// Exit status: 0 clean, 1 findings reported, 2 load/usage error.
// Findings print as "file:line: [analyzer] message"; -json emits the
// same findings as a JSON array for machine consumption. -listcache
// names a file that caches the `go list -json` answers so repeated CI
// steps skip the module scan.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"robustperiod/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(argv []string) int {
	fs := flag.NewFlagSet("rplint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	listOnly := fs.Bool("list", false, "list analyzers and exit")
	listCache := fs.String("listcache", "", "cache file for go list output (read if present, written otherwise)")
	writeCache := fs.Bool("writecache", false, "only resolve patterns and write the -listcache file, then exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *listOnly {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := analysis.Analyzers()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a := analysis.AnalyzerByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "rplint: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rplint: %v\n", err)
		return 2
	}
	moduleDir, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rplint: %v\n", err)
		return 2
	}

	if *writeCache {
		if *listCache == "" {
			fmt.Fprintln(os.Stderr, "rplint: -writecache requires -listcache <file>")
			return 2
		}
		if _, err := analysis.List(moduleDir, patterns, *listCache); err != nil {
			fmt.Fprintf(os.Stderr, "rplint: %v\n", err)
			return 2
		}
		return 0
	}

	loader, pkgs, err := analysis.Load(moduleDir, patterns, *listCache)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rplint: %v\n", err)
		return 2
	}
	cfg, err := analysis.RepoConfig(loader)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rplint: %v\n", err)
		return 2
	}

	findings := analysis.Run(pkgs, cfg, analyzers)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "rplint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "rplint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}
