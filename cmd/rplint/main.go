// Command rplint runs the repository's static-analysis suite: eleven
// analyzers (see internal/analysis and the README "Static analysis"
// section) that enforce the pipeline's correctness invariants over
// every package matched by the given patterns (default ./...). Six are
// per-file checks; five are flow-aware, built on an intra-procedural
// CFG and a module-wide call-summary layer, and marked [flow] in
// -list output.
//
// Usage:
//
//	go run ./cmd/rplint [-json] [-list] [-listcache file] [-facts file] [-only names] [patterns...]
//
// Exit status: 0 clean, 1 findings reported, 2 load/usage error.
// Findings print as "file:line: [analyzer] message"; -json emits an
// object {"findings": [...], "timing": [...]} with per-analyzer
// wall-clock milliseconds for machine consumption. -listcache names a
// file that caches the `go list -json` answers so repeated CI steps
// skip the module scan. -facts names a cache file for the compiler's
// escape-analysis verdicts (`go build -gcflags=-m` under a throwaway
// GOCACHE, keyed by a source hash); when given, the hotalloc analyzer
// cross-checks its AST heuristics against the compiler's ground
// truth.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"robustperiod/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// jsonReport is the -json output shape.
type jsonReport struct {
	Findings []analysis.Finding `json:"findings"`
	Timing   []analysis.Timing  `json:"timing"`
}

func run(argv []string) int {
	fs := flag.NewFlagSet("rplint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings and per-analyzer timing as a JSON object")
	listOnly := fs.Bool("list", false, "list analyzers and exit; flow-aware analyzers are marked [flow]")
	listCache := fs.String("listcache", "", "cache file for go list output (read if present, written otherwise)")
	writeCache := fs.Bool("writecache", false, "only resolve patterns and write the -listcache file, then exit")
	factsCache := fs.String("facts", "", "cache file for compiler escape facts; enables hotalloc's escape cross-check")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *listOnly {
		for _, a := range analysis.Analyzers() {
			kind := ""
			if a.Flow {
				kind = " [flow]"
			}
			fmt.Printf("%-16s %s%s\n", a.Name, a.Doc, kind)
		}
		return 0
	}

	analyzers := analysis.Analyzers()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a := analysis.AnalyzerByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "rplint: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rplint: %v\n", err)
		return 2
	}
	moduleDir, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rplint: %v\n", err)
		return 2
	}

	if *writeCache {
		if *listCache == "" {
			fmt.Fprintln(os.Stderr, "rplint: -writecache requires -listcache <file>")
			return 2
		}
		if _, err := analysis.List(moduleDir, patterns, *listCache); err != nil {
			fmt.Fprintf(os.Stderr, "rplint: %v\n", err)
			return 2
		}
		return 0
	}

	loader, pkgs, err := analysis.Load(moduleDir, patterns, *listCache)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rplint: %v\n", err)
		return 2
	}
	cfg, err := analysis.RepoConfig(loader)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rplint: %v\n", err)
		return 2
	}
	if *factsCache != "" {
		ef, err := analysis.LoadEscape(moduleDir, patterns, *factsCache)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rplint: %v\n", err)
			return 2
		}
		cfg.Escape = ef.Notes
	}

	findings, timing := analysis.RunTimed(pkgs, cfg, analyzers)

	if *jsonOut {
		if findings == nil {
			findings = []analysis.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(jsonReport{Findings: findings, Timing: timing}); err != nil {
			fmt.Fprintf(os.Stderr, "rplint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "rplint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}
