package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"robustperiod/internal/analysis"
)

// capture runs fn with os.Stdout redirected into a buffer.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	done := make(chan string)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				done <- sb.String()
				return
			}
		}
	}()
	fn()
	w.Close()
	return <-done
}

func TestListFlag(t *testing.T) {
	out := capture(t, func() {
		if code := run([]string{"-list"}); code != 0 {
			t.Errorf("run(-list) = %d, want 0", code)
		}
	})
	for _, a := range analysis.Analyzers() {
		line := ""
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, a.Name+" ") {
				line = l
				break
			}
		}
		if line == "" {
			t.Errorf("-list output missing analyzer %q:\n%s", a.Name, out)
			continue
		}
		if a.Flow != strings.Contains(line, "[flow]") {
			t.Errorf("-list flow marker wrong for %q (Flow=%v): %s", a.Name, a.Flow, line)
		}
	}
}

func TestJSONOutputClean(t *testing.T) {
	// The registry package is lint-clean by construction; -json must
	// still emit a well-formed report object with empty findings and a
	// timing entry per analyzer plus the shared facts pass.
	out := capture(t, func() {
		if code := run([]string{"-json", "./internal/registry"}); code != 0 {
			t.Errorf("run = %d, want 0", code)
		}
	})
	var report struct {
		Findings []analysis.Finding `json:"findings"`
		Timing   []analysis.Timing  `json:"timing"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("output is not a JSON report object: %v\n%s", err, out)
	}
	if len(report.Findings) != 0 {
		t.Errorf("expected no findings, got %+v", report.Findings)
	}
	if want := len(analysis.Analyzers()) + 1; len(report.Timing) != want {
		t.Errorf("want %d timing entries (analyzers + facts), got %d", want, len(report.Timing))
	}
	if len(report.Timing) == 0 || report.Timing[0].Analyzer != "facts" {
		t.Errorf("timing must lead with the shared facts pass, got %+v", report.Timing)
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	if code := run([]string{"-only", "nosuch"}); code != 2 {
		t.Errorf("run(-only nosuch) = %d, want 2", code)
	}
}

func TestOnlyCommaSeparated(t *testing.T) {
	// A comma-separated -only list runs exactly the named analyzers;
	// timing in the report proves which ones ran.
	out := capture(t, func() {
		if code := run([]string{"-json", "-only", "floateq, lockdiscipline", "./internal/registry"}); code != 0 {
			t.Errorf("run = %d, want 0", code)
		}
	})
	var report struct {
		Timing []analysis.Timing `json:"timing"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("output is not a JSON report object: %v\n%s", err, out)
	}
	var names []string
	for _, entry := range report.Timing {
		names = append(names, entry.Analyzer)
	}
	if got := strings.Join(names, ","); got != "facts,floateq,lockdiscipline" {
		t.Errorf("-only ran %q, want facts,floateq,lockdiscipline", got)
	}
}

func TestOnlyUnknownAmongValid(t *testing.T) {
	// One bad name in the list is still a usage error.
	if code := run([]string{"-only", "floateq,nosuch"}); code != 2 {
		t.Errorf("run(-only floateq,nosuch) = %d, want 2", code)
	}
}
