package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"robustperiod/internal/analysis"
)

// capture runs fn with os.Stdout redirected into a buffer.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	done := make(chan string)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				done <- sb.String()
				return
			}
		}
	}()
	fn()
	w.Close()
	return <-done
}

func TestListFlag(t *testing.T) {
	out := capture(t, func() {
		if code := run([]string{"-list"}); code != 0 {
			t.Errorf("run(-list) = %d, want 0", code)
		}
	})
	for _, a := range analysis.Analyzers() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output missing analyzer %q:\n%s", a.Name, out)
		}
	}
}

func TestJSONOutputClean(t *testing.T) {
	// The registry package is lint-clean by construction; -json must
	// still emit a well-formed (empty) array for it.
	out := capture(t, func() {
		if code := run([]string{"-json", "./internal/registry"}); code != 0 {
			t.Errorf("run = %d, want 0", code)
		}
	})
	var findings []analysis.Finding
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("output is not a JSON findings array: %v\n%s", err, out)
	}
	if len(findings) != 0 {
		t.Errorf("expected no findings, got %+v", findings)
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	if code := run([]string{"-only", "nosuch"}); code != 2 {
		t.Errorf("run(-only nosuch) = %d, want 2", code)
	}
}
