// Command rpsynth emits the synthetic datasets of the paper's
// evaluation as CSV (one value per line), so they can be inspected,
// plotted, or fed back through the robustperiod CLI.
//
//	rpsynth -preset paper                  # Fig. 3a: periods 20/50/100 + trend/noise/outliers
//	rpsynth -preset square -noise 1        # square waves under heavier noise
//	rpsynth -preset cloud5                 # CPU usage with 10.5% block-missing
//	rpsynth -n 2000 -periods 24,168        # custom series
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strconv"
	"strings"

	"robustperiod/internal/synthetic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rpsynth: ")

	var (
		preset  = flag.String("preset", "", "paper|square|triangle|yahoo-a3|yahoo-a4|cloud1..cloud6")
		n       = flag.Int("n", 1000, "series length (custom series)")
		periods = flag.String("periods", "20,50,100", "comma-separated period lengths (custom series)")
		noise   = flag.Float64("noise", 0.1, "Gaussian noise variance σ²")
		eta     = flag.Float64("outliers", 0.01, "outlier ratio η")
		seed    = flag.Int64("seed", 1, "RNG seed")
		outPath = flag.String("out", "-", "output path ('-' = stdout)")
	)
	flag.Parse()

	var x []float64
	var truth []int
	switch *preset {
	case "paper", "":
		ps, err := parsePeriods(*periods)
		if err != nil {
			log.Fatal(err)
		}
		shape := synthetic.Sine
		x = synthetic.Generate(synthetic.PaperConfig(*n, shape, ps, *noise, *eta, *seed))
		truth = ps
	case "square", "triangle":
		ps, err := parsePeriods(*periods)
		if err != nil {
			log.Fatal(err)
		}
		shape := synthetic.Square
		if *preset == "triangle" {
			shape = synthetic.Triangle
		}
		x = synthetic.Generate(synthetic.PaperConfig(*n, shape, ps, *noise, *eta, *seed))
		truth = ps
	case "yahoo-a3":
		s := synthetic.YahooA3Corpus(1, *seed)[0]
		x, truth = s.X, s.Truth
	case "yahoo-a4":
		s := synthetic.YahooA4Corpus(1, *seed)[0]
		x, truth = s.X, s.Truth
	case "cloud1", "cloud2", "cloud3", "cloud4", "cloud5", "cloud6":
		idx, _ := strconv.Atoi(strings.TrimPrefix(*preset, "cloud"))
		s := synthetic.CloudAll(*seed)[idx-1]
		x, truth = s.X, s.Truth
	default:
		log.Fatalf("unknown preset %q", *preset)
	}

	w := bufio.NewWriter(os.Stdout)
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()
	for _, v := range x {
		if math.IsNaN(v) {
			fmt.Fprintln(w, "")
			continue
		}
		fmt.Fprintf(w, "%g\n", v)
	}
	fmt.Fprintf(os.Stderr, "wrote %d points, true periods %v\n", len(x), truth)
}

func parsePeriods(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		p, err := strconv.Atoi(part)
		if err != nil || p < 2 {
			return nil, fmt.Errorf("bad period %q", part)
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no periods given")
	}
	return out, nil
}
