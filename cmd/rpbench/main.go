// Command rpbench regenerates the tables and figures of the paper's
// evaluation section (§4) on the synthetic and surrogate corpora
// described in DESIGN.md.
//
//	rpbench -table all            # every table
//	rpbench -table 2 -trials 100  # Table 2 with 100 series per corpus
//	rpbench -figure 5             # Fig. 5 per-level diagnostics
//	rpbench -figure 6             # Fig. 6 periodogram/ACF schemes
//
// Trial counts default to 50 per corpus; the paper uses 1000, which is
// reachable with -trials 1000 if you have the patience.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"robustperiod/internal/eval"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rpbench: ")

	var (
		table     = flag.String("table", "", "table to regenerate: 1-8 or 'all'")
		figure    = flag.String("figure", "", "figure to regenerate: 5 or 6 or 'all'")
		ablations = flag.Bool("ablations", false, "print the implementation-ablation table (DESIGN.md §6)")
		report    = flag.String("report", "", "run everything and write a markdown report to this path")
		trials    = flag.Int("trials", 50, "series per synthetic corpus")
		seed      = flag.Int64("seed", 1, "base RNG seed")
	)
	flag.Parse()

	if *table == "" && *figure == "" && !*ablations && *report == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *report != "" {
		if err := os.WriteFile(*report, []byte(eval.Report(*trials, *seed)), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *report)
	}
	if *ablations {
		fmt.Println(eval.TableImplAblations(minInt(*trials, 25), *seed+1000))
	}

	runTable := func(id int) {
		switch id {
		case 1:
			fmt.Println(eval.Table1(*trials, *seed))
		case 2:
			fmt.Println(eval.Table2(*trials, *seed+100))
		case 3:
			fmt.Println(eval.Table3(*trials, *seed+200))
		case 4:
			fmt.Println(eval.Table4(*seed + 300))
		case 5:
			fmt.Println(eval.Table5(*trials, *seed+400))
		case 6:
			fmt.Println(eval.Table6(minInt(*trials, 20), *seed+500))
		case 7:
			fmt.Println(eval.Table7(*trials, *seed+600))
		case 8:
			fmt.Println(eval.Table8(*trials, *seed+700))
		default:
			log.Fatalf("unknown table %d", id)
		}
	}
	runFigure := func(id int) {
		switch id {
		case 5:
			fmt.Println(eval.Figure5(*seed + 800))
		case 6:
			fmt.Println(eval.Figure6(*seed + 900))
		default:
			log.Fatalf("unknown figure %d", id)
		}
	}

	if *table != "" {
		if *table == "all" {
			for id := 1; id <= 8; id++ {
				runTable(id)
			}
		} else {
			id, err := strconv.Atoi(*table)
			if err != nil {
				log.Fatalf("bad -table value %q", *table)
			}
			runTable(id)
		}
	}
	if *figure != "" {
		if *figure == "all" {
			runFigure(5)
			runFigure(6)
		} else {
			id, err := strconv.Atoi(*figure)
			if err != nil {
				log.Fatalf("bad -figure value %q", *figure)
			}
			runFigure(id)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
