// Command rpbench regenerates the tables and figures of the paper's
// evaluation section (§4) on the synthetic and surrogate corpora
// described in DESIGN.md, and doubles as the machine-readable
// benchmark harness behind the CI bench-guard job.
//
//	rpbench -table all            # every table
//	rpbench -table 2 -trials 100  # Table 2 with 100 series per corpus
//	rpbench -figure 5             # Fig. 5 per-level diagnostics
//	rpbench -figure 6             # Fig. 6 periodogram/ACF schemes
//
// Trial counts default to 50 per corpus; the paper uses 1000, which is
// reachable with -trials 1000 if you have the patience.
//
// Bench mode scores the RobustPeriod detector on the Tables 1–3
// corpora and times whole detections (with the per-stage breakdown
// from the trace layer) at N=500/1000/2000, emitting JSON with schema
// "robustperiod-bench/v1":
//
//	rpbench -quick -json bench/                     # write BENCH_<ts>.json
//	rpbench -quick -baseline bench/BENCH_x.json     # gate against a baseline
//	rpbench -quick -baseline ... -max-regress 0.2   # allow +20% wall time
//	rpbench -quick -stage-diff bench/BENCH_x.json   # markdown per-stage diff (non-gating)
//
// With -baseline, rpbench exits non-zero when any Tables 1–3 quality
// score drops or whole-detection wall time regresses beyond
// -max-regress. Quality scores are deterministic in (-trials, -seed),
// so gate runs must use the same values the baseline was generated
// with; -quick pins both for CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"robustperiod/internal/eval"
	"robustperiod/internal/eval/servicebench"
	"robustperiod/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rpbench: ")

	var (
		table     = flag.String("table", "", "table to regenerate: 1-8 or 'all'")
		figure    = flag.String("figure", "", "figure to regenerate: 5 or 6 or 'all'")
		ablations = flag.Bool("ablations", false, "print the implementation-ablation table (DESIGN.md §6)")
		report    = flag.String("report", "", "run everything and write a markdown report to this path")
		trials    = flag.Int("trials", 50, "series per synthetic corpus")
		seed      = flag.Int64("seed", 1, "base RNG seed")

		quick      = flag.Bool("quick", false, "bench mode with CI-sized corpora (pins -trials 5 -seed 1)")
		jsonOut    = flag.String("json", "", "bench mode: write the JSON report to this path (a directory gets BENCH_<timestamp>.json)")
		baseline   = flag.String("baseline", "", "bench mode: gate the run against this baseline JSON report, exit 1 on regression")
		stageDiff  = flag.String("stage-diff", "", "bench mode: print a non-gating markdown per-stage diff table against this baseline JSON report")
		maxRegress = flag.Float64("max-regress", 0.20, "bench gate: allowed whole-detection wall-time regression (0.20 = +20%; negative disables the perf gate)")
		version    = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(obs.GetBuildInfo())
		return
	}

	benchMode := *quick || *jsonOut != "" || *baseline != "" || *stageDiff != ""
	if *table == "" && *figure == "" && !*ablations && *report == "" && !benchMode {
		flag.Usage()
		os.Exit(2)
	}
	if benchMode {
		runBench(*quick, *trials, *seed, *jsonOut, *baseline, *stageDiff, *maxRegress)
	}
	if *report != "" {
		if err := os.WriteFile(*report, []byte(eval.Report(*trials, *seed)), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *report)
	}
	if *ablations {
		fmt.Println(eval.TableImplAblations(minInt(*trials, 25), *seed+1000))
	}

	runTable := func(id int) {
		switch id {
		case 1:
			fmt.Println(eval.Table1(*trials, *seed))
		case 2:
			fmt.Println(eval.Table2(*trials, *seed+100))
		case 3:
			fmt.Println(eval.Table3(*trials, *seed+200))
		case 4:
			fmt.Println(eval.Table4(*seed + 300))
		case 5:
			fmt.Println(eval.Table5(*trials, *seed+400))
		case 6:
			fmt.Println(eval.Table6(minInt(*trials, 20), *seed+500))
		case 7:
			fmt.Println(eval.Table7(*trials, *seed+600))
		case 8:
			fmt.Println(eval.Table8(*trials, *seed+700))
		default:
			log.Fatalf("unknown table %d", id)
		}
	}
	runFigure := func(id int) {
		switch id {
		case 5:
			fmt.Println(eval.Figure5(*seed + 800))
		case 6:
			fmt.Println(eval.Figure6(*seed + 900))
		default:
			log.Fatalf("unknown figure %d", id)
		}
	}

	if *table != "" {
		if *table == "all" {
			for id := 1; id <= 8; id++ {
				runTable(id)
			}
		} else {
			id, err := strconv.Atoi(*table)
			if err != nil {
				log.Fatalf("bad -table value %q", *table)
			}
			runTable(id)
		}
	}
	if *figure != "" {
		if *figure == "all" {
			runFigure(5)
			runFigure(6)
		} else {
			id, err := strconv.Atoi(*figure)
			if err != nil {
				log.Fatalf("bad -figure value %q", *figure)
			}
			runFigure(id)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// runBench runs the quality+perf suites and optionally writes the
// JSON report and/or gates against a baseline. Exits the process:
// 0 on success, 1 on a failed gate or I/O error.
func runBench(quick bool, trials int, seed int64, jsonOut, baselinePath, stageDiffPath string, maxRegress float64) {
	if quick {
		// Pin the corpus shape so -quick runs are comparable across
		// machines and across the committed baseline.
		trials, seed = 5, 1
	}
	log.Printf("bench: trials=%d seed=%d quick=%v", trials, seed, quick)
	rep := eval.RunBench(quick, trials, seed)
	rep.Generated = time.Now().UTC().Format(time.RFC3339)
	service := servicebench.Run(quick, seed)
	rep.Service = &service
	log.Printf("bench: service %d requests, %d errors, %d shed, %d degraded",
		service.Requests, service.Errors, service.Shed, service.Degraded)
	jobsLeg := servicebench.RunJobs(seed)
	rep.Jobs = &jobsLeg
	log.Printf("bench: jobs %d clients/%d keys: %d errors, %d failed, %d shed, %d coalesced (hit rate %.2f), p99 %.0fms",
		jobsLeg.Clients, jobsLeg.Unique, jobsLeg.Errors, jobsLeg.Failed, jobsLeg.Shed,
		jobsLeg.Coalesced, jobsLeg.HitRate, jobsLeg.P99MS)

	for _, q := range rep.Quality {
		log.Printf("bench: %-28s %s=%.4f (p=%.4f r=%.4f f1=%.4f)",
			q.Key(), q.Metric, q.Score, q.Precision, q.Recall, q.F1)
	}
	for _, p := range append(append([]eval.PerfRow(nil), rep.Perf...), rep.PerfAsym...) {
		log.Printf("bench: %-16s %8.2fms/op  %d allocs/op", p.Name, float64(p.NsPerOp)/1e6, p.AllocsPerOp)
	}

	if jsonOut != "" {
		path := jsonOut
		if fi, err := os.Stat(path); err == nil && fi.IsDir() {
			path = filepath.Join(path, "BENCH_"+time.Now().UTC().Format("20060102T150405Z")+".json")
		}
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	if stageDiffPath != "" {
		base, err := readBench(stageDiffPath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(eval.FormatStageDiff(base, rep))
	}

	if baselinePath != "" {
		base, err := readBench(baselinePath)
		if err != nil {
			log.Fatal(err)
		}
		violations := eval.CompareBench(base, rep, maxRegress)
		if len(violations) > 0 {
			for _, v := range violations {
				log.Printf("REGRESSION: %s", v)
			}
			os.Exit(1)
		}
		log.Printf("bench gate passed against %s", baselinePath)
	}
	os.Exit(0)
}

// readBench loads and parses a JSON bench report from disk.
func readBench(path string) (eval.BenchReport, error) {
	var rep eval.BenchReport
	raw, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return rep, fmt.Errorf("parse baseline %s: %w", path, err)
	}
	return rep, nil
}
